//! Graph metrics used in the paper's evaluation (§V-B).
//!
//! * **Closeness centrality** `C(u) = (n - 1) / Σ_v d(u, v)` — "an indication
//!   of how fast messages can propagate in the network".
//! * **Degree centrality** — the fraction of nodes a node is connected to,
//!   "an indication of immediate chance of receiving whatever is flowing
//!   through the network".
//! * **Diameter** — the longest shortest path, "a lower bound on worst case
//!   delay".
//!
//! Exact metrics run an all-pairs BFS (`O(n·(n+m))`), which is fine up to a
//! few thousand nodes. For the paper's 15000-node runs the `sampled_*`
//! variants estimate the same quantities from a random subset of BFS sources;
//! the figure harness uses them with a few hundred sources, which keeps the
//! curve shapes intact.
//!
//! All traversals run on **flat arrays indexed by node id** (the graph is an
//! index-addressed slab, see [`Graph::id_bound`]): distances live in a
//! `Vec<u32>` with a sentinel for "unreached" and the BFS queue doubles as
//! the visit-order record. No hash maps or hash sets are involved, so the
//! traversal order is deterministic by construction.
//!
//! The BFS-sweep metrics ([`sampled_diameter`], [`diameter`],
//! [`average_path_length`], [`path_metrics`]) additionally freeze the slab
//! into a [`CsrSnapshot`] and fan their sources across the
//! [`parallel_bfs_from_sources`] kernel. Source selection stays sequential
//! and up front (the RNG stream is untouched by the rewrite) and every
//! source's result lands in its slot by source index, so the output is
//! byte-identical to the sequential path at any thread budget — see
//! [`crate::budget`] for how many threads a sweep may use.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::budget::thread_budget;
use crate::csr::CsrSnapshot;
use crate::graph::{Graph, NodeId};

/// Sentinel distance for nodes a BFS did not reach.
const UNREACHED: u32 = u32::MAX;

/// Read-only adjacency shared by the slab [`Graph`] and its frozen
/// [`CsrSnapshot`], so every traversal (BFS scratch, parallel kernel,
/// component sweeps) is written once and produces the identical visit
/// order over either representation.
pub trait Adjacency {
    /// One past the largest node id, for sizing flat per-node arrays.
    fn id_bound(&self) -> usize;
    /// Whether `node` is live.
    fn contains(&self, node: NodeId) -> bool;
    /// The neighbors of `node`, sorted ascending; empty for dead nodes.
    fn neighbors_of(&self, node: NodeId) -> &[NodeId];
    /// The live node ids in ascending order.
    fn live_nodes(&self) -> Vec<NodeId>;
}

impl Adjacency for Graph {
    fn id_bound(&self) -> usize {
        Graph::id_bound(self)
    }
    fn contains(&self, node: NodeId) -> bool {
        Graph::contains(self, node)
    }
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.neighbors(node).unwrap_or(&[])
    }
    fn live_nodes(&self) -> Vec<NodeId> {
        self.nodes()
    }
}

impl Adjacency for CsrSnapshot {
    fn id_bound(&self) -> usize {
        CsrSnapshot::id_bound(self)
    }
    fn contains(&self, node: NodeId) -> bool {
        CsrSnapshot::contains(self, node)
    }
    fn neighbors_of(&self, node: NodeId) -> &[NodeId] {
        self.neighbors(node)
    }
    fn live_nodes(&self) -> Vec<NodeId> {
        CsrSnapshot::live_nodes(self)
    }
}

/// Distances from one BFS source, stored as a flat array indexed by node id.
///
/// Produced by [`bfs_distances`]. Membership checks and lookups are array
/// indexing; [`reached`](DistanceMap::reached) lists the visited nodes in
/// BFS discovery order (source first, then distance-1 nodes in neighbor
/// order, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMap {
    /// `dist[id] == UNREACHED` marks unreached (or deleted) nodes.
    dist: Vec<u32>,
    /// Visited nodes in discovery order; doubles as the BFS queue.
    reached: Vec<NodeId>,
}

impl DistanceMap {
    /// The distance from the source to `node`, if it was reached.
    pub fn get(&self, node: NodeId) -> Option<usize> {
        match self.dist.get(node.0).copied() {
            None | Some(UNREACHED) => None,
            Some(d) => Some(d as usize),
        }
    }

    /// Whether the BFS reached `node` (the source counts as reached).
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Number of reached nodes, including the source. `0` when the BFS
    /// started from a missing node.
    pub fn reached_count(&self) -> usize {
        self.reached.len()
    }

    /// `true` when nothing was reached (missing source).
    pub fn is_empty(&self) -> bool {
        self.reached.is_empty()
    }

    /// The reached nodes in BFS discovery order (source first).
    pub fn reached(&self) -> &[NodeId] {
        &self.reached
    }

    /// Iterates `(node, distance)` pairs in BFS discovery order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.reached
            .iter()
            .map(move |&n| (n, self.dist[n.0] as usize))
    }

    /// Sum of distances over all reached nodes (the source contributes 0).
    pub fn total(&self) -> usize {
        self.reached.iter().map(|&n| self.dist[n.0] as usize).sum()
    }

    /// Greatest distance to any reached node — the source's eccentricity
    /// within its component. `None` when the source was missing.
    pub fn max(&self) -> Option<usize> {
        // The queue is filled in non-decreasing distance order, so the last
        // reached node carries the maximum distance.
        self.reached.last().map(|&n| self.dist[n.0] as usize)
    }
}

/// Breadth-first search distances from `source` to every reachable node
/// (including `source` itself at distance 0).
pub fn bfs_distances(graph: &Graph, source: NodeId) -> DistanceMap {
    let mut map = DistanceMap {
        dist: vec![UNREACHED; graph.id_bound()],
        reached: Vec::new(),
    };
    if !graph.contains(source) {
        return map;
    }
    map.dist[source.0] = 0;
    map.reached.push(source);
    let mut head = 0usize;
    while head < map.reached.len() {
        let u = map.reached[head];
        head += 1;
        let d = map.dist[u.0] + 1;
        if let Some(neighbors) = graph.neighbors(u) {
            for &v in neighbors {
                if map.dist[v.0] == UNREACHED {
                    map.dist[v.0] = d;
                    map.reached.push(v);
                }
            }
        }
    }
    map
}

/// The aggregate result of one BFS: the source's eccentricity within its
/// component, the sum of distances to every reached node, and the reached
/// count (including the source). All zero for a missing source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfsStats {
    /// Greatest distance to any reached node.
    pub eccentricity: usize,
    /// Sum of distances over reached nodes (the source contributes 0).
    pub total_distance: u64,
    /// Number of reached nodes, including the source.
    pub reached: usize,
}

/// Reusable BFS state: one distance array plus one queue, reset lazily so
/// a sweep over many sources allocates `O(id_bound)` once instead of per
/// source.
///
/// After [`run`](BfsScratch::run) returns, the distances of the *last*
/// BFS stay readable ([`get`](BfsScratch::get),
/// [`contains`](BfsScratch::contains), [`reached`](BfsScratch::reached))
/// until the next `run`, which un-marks exactly the previously touched
/// entries — the reset is `O(reached)`, not `O(id_bound)`.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Runs one BFS from `source` over `adj`, returning its aggregate
    /// stats. A dead or out-of-range source yields all-zero stats and an
    /// empty reached set.
    pub fn run<A: Adjacency + ?Sized>(&mut self, adj: &A, source: NodeId) -> BfsStats {
        // Lazy reset: un-mark what the previous run touched, then grow the
        // distance array if the graph gained ids since.
        for &n in &self.queue {
            self.dist[n.0] = UNREACHED;
        }
        self.queue.clear();
        if self.dist.len() < adj.id_bound() {
            self.dist.resize(adj.id_bound(), UNREACHED);
        }
        if !adj.contains(source) {
            return BfsStats::default();
        }
        self.dist[source.0] = 0;
        self.queue.push(source);
        let mut head = 0usize;
        let mut total = 0u64;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let d = self.dist[u.0] + 1;
            for &v in adj.neighbors_of(u) {
                if self.dist[v.0] == UNREACHED {
                    self.dist[v.0] = d;
                    total += u64::from(d);
                    self.queue.push(v);
                }
            }
        }
        BfsStats {
            eccentricity: self.queue.last().map_or(0, |&n| self.dist[n.0] as usize),
            total_distance: total,
            reached: self.queue.len(),
        }
    }

    /// The distance from the last run's source to `node`, if reached.
    pub fn get(&self, node: NodeId) -> Option<usize> {
        match self.dist.get(node.0).copied() {
            None | Some(UNREACHED) => None,
            Some(d) => Some(d as usize),
        }
    }

    /// Whether the last run reached `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// The nodes the last run reached, in BFS discovery order.
    pub fn reached(&self) -> &[NodeId] {
        &self.queue
    }
}

/// Deterministic multi-source BFS kernel: runs one BFS per source over a
/// shared read-only adjacency, fanning sources across at most `threads`
/// scoped worker threads (clamped to the source count; `<= 1` runs inline
/// with no thread machinery).
///
/// Each worker owns one reusable [`BfsScratch`] and claims sources from a
/// shared atomic cursor; every result is written into the output slot of
/// its *source index*, so the returned vector is **byte-identical to the
/// sequential path regardless of thread count or scheduling**. Callers
/// that sample sources with an RNG must draw them before calling (as
/// [`sampled_diameter`] does), keeping RNG streams independent of the
/// thread budget.
pub fn parallel_bfs_from_sources<A: Adjacency + Sync + ?Sized>(
    adj: &A,
    sources: &[NodeId],
    threads: usize,
) -> Vec<BfsStats> {
    /// Hard ceiling on kernel workers: budgets are caller-supplied (CLI
    /// flag, environment variable), and an absurd value must degrade to
    /// "merely pointless", not to a failed `std::thread` spawn aborting
    /// the scope. 64 is far above any useful BFS fan-out while keeping
    /// over-provisioned determinism tests (threads > cores) meaningful.
    const MAX_KERNEL_THREADS: usize = 64;
    let threads = threads.clamp(1, MAX_KERNEL_THREADS).min(sources.len());
    if threads <= 1 {
        let mut scratch = BfsScratch::new();
        return sources.iter().map(|&s| scratch.run(adj, s)).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, BfsStats)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = BfsScratch::new();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&source) = sources.get(i) else {
                            break;
                        };
                        local.push((i, scratch.run(adj, source)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("BFS worker panicked"))
            .collect()
    });
    // Scatter by source index: the cursor hands each index to exactly one
    // worker, so every slot is written exactly once.
    let mut out = vec![BfsStats::default(); sources.len()];
    for (i, stats) in per_worker.into_iter().flatten() {
        out[i] = stats;
    }
    out
}

/// Closeness centrality of a single node, normalized by `n - 1` over the
/// whole graph (matching the paper's formula). Unreachable nodes contribute
/// nothing: the sum only ranges over the node's connected component, scaled
/// by the fraction of the graph that is reachable (the standard
/// Wasserman–Faust correction), so values remain comparable when the graph
/// partitions.
pub fn closeness_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 || !graph.contains(node) {
        return 0.0;
    }
    let dist = bfs_distances(graph, node);
    let reachable = dist.reached_count() - 1; // excluding the node itself
    if reachable == 0 {
        return 0.0;
    }
    let total = dist.total();
    // (reachable / (n-1)) * (reachable / total): closeness within the
    // component scaled by component coverage.
    (reachable as f64 / (n - 1) as f64) * (reachable as f64 / total as f64)
}

/// The closeness formula applied to one source's aggregate BFS stats:
/// identical arithmetic to [`closeness_centrality`], shared by the
/// kernel-backed average variants.
fn closeness_from_stats(stats: &BfsStats, n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let reachable = stats.reached.saturating_sub(1); // excluding the source
    if reachable == 0 {
        return 0.0;
    }
    (reachable as f64 / (n - 1) as f64) * (reachable as f64 / stats.total_distance as f64)
}

/// Average closeness centrality over all nodes (exact, all-pairs BFS over
/// a frozen snapshot, sources fanned across the thread budget).
pub fn average_closeness_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let csr = CsrSnapshot::build(graph);
    let stats = parallel_bfs_from_sources(&csr, &nodes, thread_budget());
    let n = graph.node_count();
    let sum: f64 = stats.iter().map(|s| closeness_from_stats(s, n)).sum();
    sum / nodes.len() as f64
}

/// Average closeness centrality estimated from `samples` random BFS
/// sources (drawn sequentially up front, swept by the kernel — the RNG
/// stream and the resulting sum are byte-identical to the sequential
/// per-source path).
pub fn sampled_average_closeness_centrality<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    sampled_average_closeness_centrality_csr(&CsrSnapshot::build(graph), samples, rng)
}

/// [`sampled_average_closeness_centrality`] over a caller-provided
/// snapshot, so several sampled metrics on one unchanged graph (e.g. a
/// takedown sample measuring closeness *and* diameter) share a single
/// freeze instead of each paying the `O(n + m)` build.
pub fn sampled_average_closeness_centrality_csr<R: Rng + ?Sized>(
    csr: &CsrSnapshot,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut nodes = csr.live_nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let stats = parallel_bfs_from_sources(csr, &nodes, thread_budget());
    let n = csr.node_count();
    let sum: f64 = stats.iter().map(|s| closeness_from_stats(s, n)).sum();
    sum / nodes.len() as f64
}

/// Degree centrality of a node: `deg(u) / (n - 1)`.
pub fn degree_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 {
        return 0.0;
    }
    graph.degree(node).unwrap_or(0) as f64 / (n - 1) as f64
}

/// Average degree centrality over all nodes.
pub fn average_degree_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: f64 = nodes.iter().map(|&u| degree_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Eccentricity of a node: the greatest BFS distance to any reachable node.
/// Returns `None` for nodes absent from the graph.
pub fn eccentricity(graph: &Graph, node: NodeId) -> Option<usize> {
    if !graph.contains(node) {
        return None;
    }
    let mut scratch = BfsScratch::new();
    Some(scratch.run(graph, node).eccentricity)
}

/// Exact diameter of the largest connected component (all-pairs BFS over
/// a frozen [`CsrSnapshot`], sources fanned across the thread budget) —
/// a thin wrapper over the [`path_metrics`] sweep.
///
/// Returns `None` for an empty graph. When the graph is partitioned the
/// diameter of the *largest* component (by node count, ties broken by
/// smallest node id) is reported, mirroring how the paper plots a finite
/// diameter for DDSR while a shattered normal graph's diameter "is
/// infinite". A long thin minority component therefore cannot inflate the
/// reported value.
pub fn diameter(graph: &Graph) -> Option<usize> {
    let csr = CsrSnapshot::build(graph);
    let (_, _, seed) = crate::components::component_seed_scan(&csr)?;
    // Re-derive the largest component's members with one O(largest) BFS,
    // then sweep only them — a partitioned graph never pays for sources
    // outside the component whose diameter is being reported.
    let mut scratch = BfsScratch::new();
    scratch.run(&csr, seed);
    let sources = scratch.reached().to_vec();
    let stats = parallel_bfs_from_sources(&csr, &sources, thread_budget());
    Some(stats.iter().map(|s| s.eccentricity).max().unwrap_or(0))
}

/// Diameter lower bound estimated from `samples` random BFS sources.
///
/// Sources are drawn from the whole graph, so on a partitioned graph this
/// estimates the largest eccentricity over all components — use
/// [`diameter`] when the largest-component semantics matter exactly.
///
/// The sources are drawn sequentially up front (the RNG stream is
/// identical to the pre-parallel implementation), then swept over a CSR
/// snapshot by the multi-source kernel under the current thread budget.
pub fn sampled_diameter<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<usize> {
    sampled_diameter_csr(&CsrSnapshot::build(graph), samples, rng)
}

/// [`sampled_diameter`] over a caller-provided snapshot — the
/// freeze-sharing sibling of
/// [`sampled_average_closeness_centrality_csr`].
pub fn sampled_diameter_csr<R: Rng + ?Sized>(
    csr: &CsrSnapshot,
    samples: usize,
    rng: &mut R,
) -> Option<usize> {
    let mut nodes = csr.live_nodes();
    if nodes.is_empty() {
        return None;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let stats = parallel_bfs_from_sources(csr, &nodes, thread_budget());
    Some(stats.iter().map(|s| s.eccentricity).max().unwrap_or(0))
}

/// Average shortest path length within connected pairs (exact): an
/// all-sources sweep over a frozen snapshot under the thread budget.
/// Returns `None` when there are no connected pairs.
pub fn average_path_length(graph: &Graph) -> Option<f64> {
    let csr = CsrSnapshot::build(graph);
    let nodes = csr.live_nodes();
    let stats = parallel_bfs_from_sources(&csr, &nodes, thread_budget());
    average_from_stats(&stats)
}

fn average_from_stats(stats: &[BfsStats]) -> Option<f64> {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for s in stats {
        total += s.total_distance;
        pairs += s.reached.saturating_sub(1) as u64; // reached minus the source
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

/// The distance metrics one all-sources BFS sweep yields.
///
/// Computed by [`path_metrics`] from a single component pass plus a
/// single multi-source sweep over one CSR snapshot — callers needing both
/// the diameter and the average path length (previously two independent
/// component scans and two sweeps) get them for one traversal's cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMetrics {
    /// Diameter of the largest connected component (see [`diameter`]).
    pub diameter: usize,
    /// Average shortest path length over connected pairs; `None` when no
    /// pair is connected (see [`average_path_length`]).
    pub average_path_length: Option<f64>,
    /// Number of connected components.
    pub component_count: usize,
    /// Size of the largest connected component.
    pub largest_component_size: usize,
}

/// Computes [`PathMetrics`] — diameter, average path length and component
/// shape — from one shared component pass and one all-sources BFS sweep
/// over a single frozen snapshot. Returns `None` for an empty graph.
///
/// Equals calling [`diameter`], [`average_path_length`] and the
/// `components` counting helpers separately, for roughly half the
/// traversal cost (one snapshot, one component pass, one sweep — the
/// `parallel_metrics` bench records ~1.8× vs the separate calls); call
/// it when more than one of its fields is needed. Forward-looking API:
/// no registered scenario consumes it yet (their reports are pinned to
/// the individual entry points), so today it is exercised by tests and
/// benches only.
pub fn path_metrics(graph: &Graph) -> Option<PathMetrics> {
    let csr = CsrSnapshot::build(graph);
    let (component_count, largest_component_size, seed) =
        crate::components::component_seed_scan(&csr)?;
    // Largest-component membership from one O(largest) BFS; the scratch's
    // marks serve as the membership set directly.
    let mut membership = BfsScratch::new();
    membership.run(&csr, seed);
    let nodes = csr.live_nodes();
    let stats = parallel_bfs_from_sources(&csr, &nodes, thread_budget());
    let diameter = nodes
        .iter()
        .zip(&stats)
        .filter(|(&n, _)| membership.contains(n))
        .map(|(_, s)| s.eccentricity)
        .max()
        .unwrap_or(0);
    Some(PathMetrics {
        diameter,
        average_path_length: average_from_stats(&stats),
        component_count,
        largest_component_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_regular, ring_lattice};
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a path graph a-b-c-d and returns (graph, ids).
    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let (mut g, ids) = Graph::with_nodes(n);
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        (g, ids)
    }

    #[test]
    fn bfs_distances_on_path() {
        let (g, ids) = path_graph(5);
        let dist = bfs_distances(&g, ids[0]);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dist.get(*id), Some(i));
        }
        assert_eq!(dist.reached_count(), 5);
        assert_eq!(dist.max(), Some(4));
        assert_eq!(dist.total(), 10, "1 + 2 + 3 + 4");
    }

    #[test]
    fn bfs_from_missing_node_is_empty() {
        let (mut g, ids) = path_graph(3);
        g.remove_node(ids[0]);
        let dist = bfs_distances(&g, ids[0]);
        assert!(dist.is_empty());
        assert_eq!(dist.reached_count(), 0);
        assert_eq!(dist.max(), None);
        assert!(!dist.contains(ids[0]));
    }

    #[test]
    fn bfs_discovery_order_is_source_then_sorted_frontiers() {
        // Star with center ids[0]: discovery order is the center followed
        // by the leaves in ascending id order (neighbor lists are sorted).
        let (mut g, ids) = Graph::with_nodes(4);
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf);
        }
        let dist = bfs_distances(&g, ids[0]);
        assert_eq!(dist.reached(), &[ids[0], ids[1], ids[2], ids[3]]);
        let collected: Vec<(NodeId, usize)> = dist.iter().collect();
        assert_eq!(collected[0], (ids[0], 0));
        assert_eq!(collected[3], (ids[3], 1));
    }

    #[test]
    fn distance_map_ignores_out_of_range_ids() {
        let (g, ids) = path_graph(2);
        let dist = bfs_distances(&g, ids[0]);
        assert_eq!(dist.get(NodeId(999)), None);
        assert!(!dist.contains(NodeId(999)));
    }

    #[test]
    fn scratch_runs_match_bfs_distances_and_reset_lazily() {
        let (g, ids) = path_graph(5);
        let mut scratch = BfsScratch::new();
        for &source in &ids {
            let stats = scratch.run(&g, source);
            let reference = bfs_distances(&g, source);
            assert_eq!(stats.eccentricity, reference.max().unwrap());
            assert_eq!(stats.total_distance, reference.total() as u64);
            assert_eq!(stats.reached, reference.reached_count());
            assert_eq!(scratch.reached(), reference.reached());
            for &n in &ids {
                assert_eq!(scratch.get(n), reference.get(n));
                assert_eq!(scratch.contains(n), reference.contains(n));
            }
        }
    }

    #[test]
    fn scratch_handles_missing_sources_and_growing_graphs() {
        let (mut g, ids) = path_graph(2);
        let mut scratch = BfsScratch::new();
        assert_eq!(scratch.run(&g, ids[0]).reached, 2);
        g.remove_node(ids[1]);
        let dead = scratch.run(&g, ids[1]);
        assert_eq!(dead, BfsStats::default());
        assert!(scratch.reached().is_empty());
        assert!(!scratch.contains(ids[0]), "previous run was un-marked");
        // The graph grows after the scratch was sized: the scratch must
        // grow with it.
        let fresh = g.add_node();
        g.add_edge(ids[0], fresh);
        let stats = scratch.run(&g, fresh);
        assert_eq!(stats.reached, 2);
        assert_eq!(scratch.get(ids[0]), Some(1));
    }

    #[test]
    fn parallel_kernel_is_identical_to_sequential_at_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, ids) = random_regular(120, 4, &mut rng);
        let csr = CsrSnapshot::build(&g);
        let sequential = parallel_bfs_from_sources(&csr, &ids, 1);
        assert_eq!(sequential.len(), ids.len());
        for threads in [2, 3, 8, 64] {
            let parallel = parallel_bfs_from_sources(&csr, &ids, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // And the sequential kernel equals per-source bfs_distances.
        for (source, stats) in ids.iter().zip(&sequential) {
            let reference = bfs_distances(&g, *source);
            assert_eq!(stats.reached, reference.reached_count());
            assert_eq!(stats.eccentricity, reference.max().unwrap());
            assert_eq!(stats.total_distance, reference.total() as u64);
        }
    }

    #[test]
    fn parallel_kernel_handles_empty_sources_and_dead_sources() {
        let (mut g, ids) = path_graph(3);
        g.remove_node(ids[1]);
        let csr = CsrSnapshot::build(&g);
        assert!(parallel_bfs_from_sources(&csr, &[], 8).is_empty());
        let stats = parallel_bfs_from_sources(&csr, &[ids[0], ids[1]], 8);
        assert_eq!(stats[0].reached, 1, "ids[0] is isolated after removal");
        assert_eq!(stats[1], BfsStats::default(), "dead source yields zeros");
    }

    #[test]
    fn closeness_on_star_graph() {
        // Star with center c and 4 leaves: C(center) = 1.0, C(leaf) = 4/7.
        let (mut g, ids) = Graph::with_nodes(5);
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf);
        }
        assert!((closeness_centrality(&g, ids[0]) - 1.0).abs() < 1e-12);
        assert!((closeness_centrality(&g, ids[1]) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let (mut g, ids) = path_graph(3);
        let isolated = g.add_node();
        assert_eq!(closeness_centrality(&g, isolated), 0.0);
        // Other nodes lose closeness because of the unreachable node.
        assert!(closeness_centrality(&g, ids[1]) < 1.0);
    }

    #[test]
    fn degree_centrality_on_complete_graph() {
        let (mut g, ids) = Graph::with_nodes(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_edge(ids[i], ids[j]);
            }
        }
        for &u in &ids {
            assert!((degree_centrality(&g, u) - 1.0).abs() < 1e-12);
        }
        assert!((average_degree_centrality(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_centrality_in_k_regular_graph_is_k_over_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_regular(100, 10, &mut rng);
        let expected = 10.0 / 99.0;
        assert!((average_degree_centrality(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path_and_ring() {
        let (g, _) = path_graph(6);
        assert_eq!(diameter(&g), Some(5));
        let (ring, _) = ring_lattice(10, 2);
        assert_eq!(diameter(&ring), Some(5));
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        assert_eq!(diameter(&Graph::new()), None);
        let (g, _) = Graph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn diameter_of_partitioned_graph_is_the_largest_components() {
        // Regression: the diameter used to be the max eccentricity over
        // *all* components, so a long thin minority component (the 4-node
        // path, diameter 3) overrode the largest component (the 5-node
        // star, diameter 2).
        let (mut g, ids) = Graph::with_nodes(9);
        for &leaf in &ids[1..5] {
            g.add_edge(ids[0], leaf);
        }
        for w in ids[5..9].windows(2) {
            g.add_edge(w[0], w[1]);
        }
        assert_eq!(
            diameter(&g),
            Some(2),
            "the 5-node star is the largest component"
        );
    }

    #[test]
    fn sampled_metrics_match_exact_when_fully_sampled() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = random_regular(60, 4, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!((exact - sampled).abs() < 1e-9);
        assert_eq!(diameter(&g), sampled_diameter(&g, 60, &mut rng));
    }

    #[test]
    fn sampled_metrics_are_reasonable_estimates() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = random_regular(300, 8, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.05,
            "exact {exact}, sampled {sampled}"
        );
    }

    #[test]
    fn average_path_length_on_path_graph() {
        let (g, _) = path_graph(3);
        // Distances: (0-1)=1, (0-2)=2, (1-2)=1 → mean = 4/3.
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_path_length(&Graph::new()), None);
    }

    #[test]
    fn sweep_metrics_are_budget_invariant() {
        // The same sweep under different thread budgets must agree to the
        // bit — this is the determinism contract the cache relies on.
        let mut rng = StdRng::seed_from_u64(12);
        let (g, _) = random_regular(200, 6, &mut rng);
        let reference = (
            diameter(&g),
            average_path_length(&g),
            path_metrics(&g),
            sampled_diameter(&g, 20, &mut StdRng::seed_from_u64(4)),
        );
        for budget in [2, 8] {
            let under_budget = crate::budget::with_thread_budget(budget, || {
                (
                    diameter(&g),
                    average_path_length(&g),
                    path_metrics(&g),
                    sampled_diameter(&g, 20, &mut StdRng::seed_from_u64(4)),
                )
            });
            assert_eq!(under_budget, reference, "budget={budget}");
        }
    }

    #[test]
    fn path_metrics_agree_with_individual_metrics() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = random_regular(80, 4, &mut rng);
        let combined = path_metrics(&g).unwrap();
        assert_eq!(Some(combined.diameter), diameter(&g));
        assert_eq!(combined.average_path_length, average_path_length(&g));
        assert_eq!(
            combined.component_count,
            crate::components::component_count(&g)
        );
        assert_eq!(
            combined.largest_component_size,
            crate::components::largest_component_size(&g)
        );
        assert_eq!(path_metrics(&Graph::new()), None);
    }

    #[test]
    fn path_metrics_on_partitioned_graph_restrict_diameter_correctly() {
        // Same shape as the diameter regression test: 5-node star (the
        // largest component, diameter 2) + 4-node path (diameter 3).
        let (mut g, ids) = Graph::with_nodes(9);
        for &leaf in &ids[1..5] {
            g.add_edge(ids[0], leaf);
        }
        for w in ids[5..9].windows(2) {
            g.add_edge(w[0], w[1]);
        }
        let metrics = path_metrics(&g).unwrap();
        assert_eq!(metrics.diameter, 2, "largest component only");
        assert_eq!(metrics.component_count, 2);
        assert_eq!(metrics.largest_component_size, 5);
        assert_eq!(metrics.average_path_length, average_path_length(&g));
    }

    #[test]
    fn eccentricity_matches_diameter_extremes() {
        let (g, ids) = path_graph(4);
        assert_eq!(eccentricity(&g, ids[0]), Some(3));
        assert_eq!(eccentricity(&g, ids[1]), Some(2));
        let (mut g2, ids2) = path_graph(2);
        g2.remove_node(ids2[0]);
        assert_eq!(eccentricity(&g2, ids2[0]), None);
    }
}
