//! Graph metrics used in the paper's evaluation (§V-B).
//!
//! * **Closeness centrality** `C(u) = (n - 1) / Σ_v d(u, v)` — "an indication
//!   of how fast messages can propagate in the network".
//! * **Degree centrality** — the fraction of nodes a node is connected to,
//!   "an indication of immediate chance of receiving whatever is flowing
//!   through the network".
//! * **Diameter** — the longest shortest path, "a lower bound on worst case
//!   delay".
//!
//! Exact metrics run an all-pairs BFS (`O(n·(n+m))`), which is fine up to a
//! few thousand nodes. For the paper's 15000-node runs the `sampled_*`
//! variants estimate the same quantities from a random subset of BFS sources;
//! the figure harness uses them with a few hundred sources, which keeps the
//! curve shapes intact.
//!
//! All traversals run on **flat arrays indexed by node id** (the graph is an
//! index-addressed slab, see [`Graph::id_bound`]): distances live in a
//! `Vec<u32>` with a sentinel for "unreached" and the BFS queue doubles as
//! the visit-order record. No hash maps or hash sets are involved, so the
//! traversal order is deterministic by construction and a BFS over a
//! million-node overlay touches memory sequentially instead of chasing
//! buckets.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Sentinel distance for nodes a BFS did not reach.
const UNREACHED: u32 = u32::MAX;

/// Distances from one BFS source, stored as a flat array indexed by node id.
///
/// Produced by [`bfs_distances`]. Membership checks and lookups are array
/// indexing; [`reached`](DistanceMap::reached) lists the visited nodes in
/// BFS discovery order (source first, then distance-1 nodes in neighbor
/// order, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMap {
    /// `dist[id] == UNREACHED` marks unreached (or deleted) nodes.
    dist: Vec<u32>,
    /// Visited nodes in discovery order; doubles as the BFS queue.
    reached: Vec<NodeId>,
}

impl DistanceMap {
    /// The distance from the source to `node`, if it was reached.
    pub fn get(&self, node: NodeId) -> Option<usize> {
        match self.dist.get(node.0).copied() {
            None | Some(UNREACHED) => None,
            Some(d) => Some(d as usize),
        }
    }

    /// Whether the BFS reached `node` (the source counts as reached).
    pub fn contains(&self, node: NodeId) -> bool {
        self.get(node).is_some()
    }

    /// Number of reached nodes, including the source. `0` when the BFS
    /// started from a missing node.
    pub fn reached_count(&self) -> usize {
        self.reached.len()
    }

    /// `true` when nothing was reached (missing source).
    pub fn is_empty(&self) -> bool {
        self.reached.is_empty()
    }

    /// The reached nodes in BFS discovery order (source first).
    pub fn reached(&self) -> &[NodeId] {
        &self.reached
    }

    /// Iterates `(node, distance)` pairs in BFS discovery order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.reached
            .iter()
            .map(move |&n| (n, self.dist[n.0] as usize))
    }

    /// Sum of distances over all reached nodes (the source contributes 0).
    pub fn total(&self) -> usize {
        self.reached.iter().map(|&n| self.dist[n.0] as usize).sum()
    }

    /// Greatest distance to any reached node — the source's eccentricity
    /// within its component. `None` when the source was missing.
    pub fn max(&self) -> Option<usize> {
        // The queue is filled in non-decreasing distance order, so the last
        // reached node carries the maximum distance.
        self.reached.last().map(|&n| self.dist[n.0] as usize)
    }
}

/// Breadth-first search distances from `source` to every reachable node
/// (including `source` itself at distance 0).
pub fn bfs_distances(graph: &Graph, source: NodeId) -> DistanceMap {
    let mut map = DistanceMap {
        dist: vec![UNREACHED; graph.id_bound()],
        reached: Vec::new(),
    };
    if !graph.contains(source) {
        return map;
    }
    map.dist[source.0] = 0;
    map.reached.push(source);
    let mut head = 0usize;
    while head < map.reached.len() {
        let u = map.reached[head];
        head += 1;
        let d = map.dist[u.0] + 1;
        if let Some(neighbors) = graph.neighbors(u) {
            for &v in neighbors {
                if map.dist[v.0] == UNREACHED {
                    map.dist[v.0] = d;
                    map.reached.push(v);
                }
            }
        }
    }
    map
}

/// BFS eccentricity of `source` using caller-provided scratch buffers, so
/// all-pairs sweeps ([`diameter`], [`average_path_length`]) do not
/// reallocate per source. `dist` must be sized `graph.id_bound()` and
/// filled with `u32::MAX`; it is restored to that state before returning.
/// Returns `(eccentricity, sum_of_distances, reached_count)`.
fn bfs_into(
    graph: &Graph,
    source: NodeId,
    dist: &mut [u32],
    queue: &mut Vec<NodeId>,
) -> (usize, usize, usize) {
    queue.clear();
    dist[source.0] = 0;
    queue.push(source);
    let mut head = 0usize;
    let mut total = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let d = dist[u.0] + 1;
        if let Some(neighbors) = graph.neighbors(u) {
            for &v in neighbors {
                if dist[v.0] == UNREACHED {
                    dist[v.0] = d;
                    total += d as usize;
                    queue.push(v);
                }
            }
        }
    }
    let ecc = queue.last().map_or(0, |&n| dist[n.0] as usize);
    let reached = queue.len();
    for &n in queue.iter() {
        dist[n.0] = UNREACHED;
    }
    (ecc, total, reached)
}

/// Closeness centrality of a single node, normalized by `n - 1` over the
/// whole graph (matching the paper's formula). Unreachable nodes contribute
/// nothing: the sum only ranges over the node's connected component, scaled
/// by the fraction of the graph that is reachable (the standard
/// Wasserman–Faust correction), so values remain comparable when the graph
/// partitions.
pub fn closeness_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 || !graph.contains(node) {
        return 0.0;
    }
    let dist = bfs_distances(graph, node);
    let reachable = dist.reached_count() - 1; // excluding the node itself
    if reachable == 0 {
        return 0.0;
    }
    let total = dist.total();
    // (reachable / (n-1)) * (reachable / total): closeness within the
    // component scaled by component coverage.
    (reachable as f64 / (n - 1) as f64) * (reachable as f64 / total as f64)
}

/// Average closeness centrality over all nodes (exact, all-pairs BFS).
pub fn average_closeness_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: f64 = nodes.iter().map(|&u| closeness_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Average closeness centrality estimated from `samples` random BFS sources.
pub fn sampled_average_closeness_centrality<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let mut nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let sum: f64 = nodes.iter().map(|&u| closeness_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Degree centrality of a node: `deg(u) / (n - 1)`.
pub fn degree_centrality(graph: &Graph, node: NodeId) -> f64 {
    let n = graph.node_count();
    if n <= 1 {
        return 0.0;
    }
    graph.degree(node).unwrap_or(0) as f64 / (n - 1) as f64
}

/// Average degree centrality over all nodes.
pub fn average_degree_centrality(graph: &Graph) -> f64 {
    let nodes = graph.nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let sum: f64 = nodes.iter().map(|&u| degree_centrality(graph, u)).sum();
    sum / nodes.len() as f64
}

/// Eccentricity of a node: the greatest BFS distance to any reachable node.
/// Returns `None` for nodes absent from the graph.
pub fn eccentricity(graph: &Graph, node: NodeId) -> Option<usize> {
    if !graph.contains(node) {
        return None;
    }
    let mut dist = vec![UNREACHED; graph.id_bound()];
    let mut queue = Vec::new();
    let (ecc, _, _) = bfs_into(graph, node, &mut dist, &mut queue);
    Some(ecc)
}

/// Exact diameter of the largest connected component (all-pairs BFS).
///
/// Returns `None` for an empty graph. When the graph is partitioned the
/// diameter of the *largest* component (by node count, ties broken by
/// smallest node id) is reported, mirroring how the paper plots a finite
/// diameter for DDSR while a shattered normal graph's diameter "is
/// infinite". A long thin minority component therefore cannot inflate the
/// reported value.
pub fn diameter(graph: &Graph) -> Option<usize> {
    let components = crate::components::connected_components(graph);
    let largest = components.first()?;
    let mut dist = vec![UNREACHED; graph.id_bound()];
    let mut queue = Vec::with_capacity(largest.len());
    let mut best = 0usize;
    for &u in largest {
        let (ecc, _, _) = bfs_into(graph, u, &mut dist, &mut queue);
        best = best.max(ecc);
    }
    Some(best)
}

/// Diameter lower bound estimated from `samples` random BFS sources.
///
/// Sources are drawn from the whole graph, so on a partitioned graph this
/// estimates the largest eccentricity over all components — use
/// [`diameter`] when the largest-component semantics matter exactly.
pub fn sampled_diameter<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<usize> {
    let mut nodes = graph.nodes();
    if nodes.is_empty() {
        return None;
    }
    nodes.shuffle(rng);
    nodes.truncate(samples.max(1).min(nodes.len()));
    let mut dist = vec![UNREACHED; graph.id_bound()];
    let mut queue = Vec::new();
    let mut best = 0usize;
    for &u in &nodes {
        let (ecc, _, _) = bfs_into(graph, u, &mut dist, &mut queue);
        best = best.max(ecc);
    }
    Some(best)
}

/// Average shortest path length within connected pairs (exact).
/// Returns `None` when there are no connected pairs.
pub fn average_path_length(graph: &Graph) -> Option<f64> {
    let nodes = graph.nodes();
    let mut dist = vec![UNREACHED; graph.id_bound()];
    let mut queue = Vec::with_capacity(nodes.len());
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &u in &nodes {
        let (_, sum, reached) = bfs_into(graph, u, &mut dist, &mut queue);
        total += sum;
        pairs += reached - 1; // every reached node except u itself
    }
    if pairs == 0 {
        None
    } else {
        Some(total as f64 / pairs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{random_regular, ring_lattice};
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a path graph a-b-c-d and returns (graph, ids).
    fn path_graph(n: usize) -> (Graph, Vec<NodeId>) {
        let (mut g, ids) = Graph::with_nodes(n);
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        (g, ids)
    }

    #[test]
    fn bfs_distances_on_path() {
        let (g, ids) = path_graph(5);
        let dist = bfs_distances(&g, ids[0]);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dist.get(*id), Some(i));
        }
        assert_eq!(dist.reached_count(), 5);
        assert_eq!(dist.max(), Some(4));
        assert_eq!(dist.total(), 10, "1 + 2 + 3 + 4");
    }

    #[test]
    fn bfs_from_missing_node_is_empty() {
        let (mut g, ids) = path_graph(3);
        g.remove_node(ids[0]);
        let dist = bfs_distances(&g, ids[0]);
        assert!(dist.is_empty());
        assert_eq!(dist.reached_count(), 0);
        assert_eq!(dist.max(), None);
        assert!(!dist.contains(ids[0]));
    }

    #[test]
    fn bfs_discovery_order_is_source_then_sorted_frontiers() {
        // Star with center ids[0]: discovery order is the center followed
        // by the leaves in ascending id order (neighbor lists are sorted).
        let (mut g, ids) = Graph::with_nodes(4);
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf);
        }
        let dist = bfs_distances(&g, ids[0]);
        assert_eq!(dist.reached(), &[ids[0], ids[1], ids[2], ids[3]]);
        let collected: Vec<(NodeId, usize)> = dist.iter().collect();
        assert_eq!(collected[0], (ids[0], 0));
        assert_eq!(collected[3], (ids[3], 1));
    }

    #[test]
    fn distance_map_ignores_out_of_range_ids() {
        let (g, ids) = path_graph(2);
        let dist = bfs_distances(&g, ids[0]);
        assert_eq!(dist.get(NodeId(999)), None);
        assert!(!dist.contains(NodeId(999)));
    }

    #[test]
    fn closeness_on_star_graph() {
        // Star with center c and 4 leaves: C(center) = 1.0, C(leaf) = 4/7.
        let (mut g, ids) = Graph::with_nodes(5);
        for &leaf in &ids[1..] {
            g.add_edge(ids[0], leaf);
        }
        assert!((closeness_centrality(&g, ids[0]) - 1.0).abs() < 1e-12);
        assert!((closeness_centrality(&g, ids[1]) - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_of_isolated_node_is_zero() {
        let (mut g, ids) = path_graph(3);
        let isolated = g.add_node();
        assert_eq!(closeness_centrality(&g, isolated), 0.0);
        // Other nodes lose closeness because of the unreachable node.
        assert!(closeness_centrality(&g, ids[1]) < 1.0);
    }

    #[test]
    fn degree_centrality_on_complete_graph() {
        let (mut g, ids) = Graph::with_nodes(6);
        for i in 0..6 {
            for j in i + 1..6 {
                g.add_edge(ids[i], ids[j]);
            }
        }
        for &u in &ids {
            assert!((degree_centrality(&g, u) - 1.0).abs() < 1e-12);
        }
        assert!((average_degree_centrality(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_centrality_in_k_regular_graph_is_k_over_n_minus_1() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_regular(100, 10, &mut rng);
        let expected = 10.0 / 99.0;
        assert!((average_degree_centrality(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_path_and_ring() {
        let (g, _) = path_graph(6);
        assert_eq!(diameter(&g), Some(5));
        let (ring, _) = ring_lattice(10, 2);
        assert_eq!(diameter(&ring), Some(5));
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        assert_eq!(diameter(&Graph::new()), None);
        let (g, _) = Graph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn diameter_of_partitioned_graph_is_the_largest_components() {
        // Regression: the diameter used to be the max eccentricity over
        // *all* components, so a long thin minority component (the 4-node
        // path, diameter 3) overrode the largest component (the 5-node
        // star, diameter 2).
        let (mut g, ids) = Graph::with_nodes(9);
        for &leaf in &ids[1..5] {
            g.add_edge(ids[0], leaf);
        }
        for w in ids[5..9].windows(2) {
            g.add_edge(w[0], w[1]);
        }
        assert_eq!(
            diameter(&g),
            Some(2),
            "the 5-node star is the largest component"
        );
    }

    #[test]
    fn sampled_metrics_match_exact_when_fully_sampled() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = random_regular(60, 4, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!((exact - sampled).abs() < 1e-9);
        assert_eq!(diameter(&g), sampled_diameter(&g, 60, &mut rng));
    }

    #[test]
    fn sampled_metrics_are_reasonable_estimates() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = random_regular(300, 8, &mut rng);
        let exact = average_closeness_centrality(&g);
        let sampled = sampled_average_closeness_centrality(&g, 60, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.05,
            "exact {exact}, sampled {sampled}"
        );
    }

    #[test]
    fn average_path_length_on_path_graph() {
        let (g, _) = path_graph(3);
        // Distances: (0-1)=1, (0-2)=2, (1-2)=1 → mean = 4/3.
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_path_length(&Graph::new()), None);
    }

    #[test]
    fn eccentricity_matches_diameter_extremes() {
        let (g, ids) = path_graph(4);
        assert_eq!(eccentricity(&g, ids[0]), Some(3));
        assert_eq!(eccentricity(&g, ids[1]), Some(2));
        let (mut g2, ids2) = path_graph(2);
        g2.remove_node(ids2[0]);
        assert_eq!(eccentricity(&g2, ids2[0]), None);
    }
}
