//! Frozen compressed-sparse-row (CSR) traversal snapshots of a [`Graph`].
//!
//! The slab [`Graph`] is the *mutation* structure: per-node `Vec` neighbor
//! lists behind `Option`s, tuned for takedowns and repairs. Measurement
//! phases (BFS sweeps, component analysis) never mutate, so they can pay
//! one `O(n + m)` pass to freeze the adjacency into two dense arrays —
//! `offsets` and `targets` — and then traverse a read-only structure with
//! no per-node indirection, no `Option` checks and perfect sharing across
//! threads (a `&CsrSnapshot` is `Sync` by construction).
//!
//! The snapshot preserves the slab's deterministic order exactly: slot `i`
//! of the graph is slot `i` of the snapshot, and each neighbor run is the
//! same sorted slice the slab held, so any traversal produces the same
//! visit order over either representation.
//!
//! ```
//! use onion_graph::csr::CsrSnapshot;
//! use onion_graph::graph::Graph;
//!
//! let (mut g, ids) = Graph::with_nodes(3);
//! g.add_edge(ids[0], ids[1]);
//! g.remove_node(ids[2]);
//! let csr = CsrSnapshot::build(&g);
//! assert_eq!(csr.node_count(), 2);
//! assert_eq!(csr.neighbors(ids[0]), &[ids[1]]);
//! assert!(!csr.contains(ids[2]), "tombstones stay dead in the snapshot");
//! ```

use crate::graph::{Graph, NodeId};

/// A frozen compressed-sparse-row view of a [`Graph`], for read-only
/// traversals.
///
/// Build one with [`CsrSnapshot::build`]; it does not track later graph
/// mutations. Node ids are the same slab indices the source graph uses,
/// so flat per-node arrays sized [`id_bound`](CsrSnapshot::id_bound) work
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrSnapshot {
    /// `offsets[i]..offsets[i + 1]` indexes `targets` with node `i`'s
    /// neighbor run; deleted slots hold an empty run. Length is
    /// `id_bound + 1`.
    offsets: Vec<u32>,
    /// All neighbor lists concatenated in slot order, each run sorted
    /// ascending (inherited from the slab).
    targets: Vec<NodeId>,
    /// `live[i]` marks slot `i` as a live node (an empty neighbor run can
    /// be either an isolated live node or a tombstone; this disambiguates
    /// without touching the source graph).
    live: Vec<bool>,
    /// Number of live nodes at snapshot time.
    live_count: usize,
}

impl CsrSnapshot {
    /// Freezes `graph` into a CSR snapshot in one ordered pass over the
    /// slab.
    ///
    /// # Panics
    /// Panics if the graph holds ≥ `u32::MAX` half-edges (the offset
    /// array is deliberately `u32` to halve its cache footprint; degree
    /// is pruned to `d_max` in every workload, so this bound is ~400
    /// million edges).
    pub fn build(graph: &Graph) -> Self {
        let bound = graph.id_bound();
        let half_edges = graph.edge_count() * 2;
        assert!(
            u32::try_from(half_edges).is_ok(),
            "graph has too many half-edges ({half_edges}) for u32 CSR offsets"
        );
        let mut offsets = Vec::with_capacity(bound + 1);
        let mut targets = Vec::with_capacity(half_edges);
        let mut live = vec![false; bound];
        offsets.push(0);
        for (i, alive) in live.iter_mut().enumerate() {
            if let Some(neighbors) = graph.neighbors(NodeId(i)) {
                *alive = true;
                targets.extend_from_slice(neighbors);
            }
            offsets.push(targets.len() as u32);
        }
        CsrSnapshot {
            offsets,
            targets,
            live,
            live_count: graph.node_count(),
        }
    }

    /// One past the largest id the snapshot covers (equals the source
    /// graph's [`Graph::id_bound`] at build time).
    pub fn id_bound(&self) -> usize {
        self.live.len()
    }

    /// Number of live nodes at snapshot time.
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Number of undirected edges at snapshot time.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Whether `node` was live at snapshot time.
    pub fn contains(&self, node: NodeId) -> bool {
        self.live.get(node.0).copied().unwrap_or(false)
    }

    /// The neighbors of `node` as the same sorted slice the slab held;
    /// empty for tombstoned, isolated or out-of-range nodes (use
    /// [`contains`](CsrSnapshot::contains) to tell the first two apart).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        if node.0 >= self.live.len() {
            return &[];
        }
        let start = self.offsets[node.0] as usize;
        let end = self.offsets[node.0 + 1] as usize;
        &self.targets[start..end]
    }

    /// The degree of `node` (`0` for dead or out-of-range nodes).
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// The live node ids in ascending order.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.live
            .iter()
            .enumerate()
            .filter_map(|(i, &alive)| alive.then_some(NodeId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_of_empty_graph() {
        let csr = CsrSnapshot::build(&Graph::new());
        assert_eq!(csr.id_bound(), 0);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert!(csr.live_nodes().is_empty());
        assert!(!csr.contains(NodeId(0)));
        assert_eq!(csr.neighbors(NodeId(0)), &[]);
    }

    #[test]
    fn snapshot_mirrors_slab_adjacency_and_tombstones() {
        let (mut g, ids) = Graph::with_nodes(5);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[3]);
        g.add_edge(ids[1], ids[3]);
        g.remove_node(ids[2]);
        let csr = CsrSnapshot::build(&g);
        assert_eq!(csr.id_bound(), g.id_bound());
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.live_nodes(), g.nodes());
        for node in g.nodes() {
            assert!(csr.contains(node));
            assert_eq!(csr.neighbors(node), g.neighbors(node).unwrap());
            assert_eq!(csr.degree(node), g.degree(node).unwrap());
        }
        assert!(!csr.contains(ids[2]), "tombstone stays dead");
        assert_eq!(csr.neighbors(ids[2]), &[]);
        assert_eq!(csr.degree(ids[2]), 0);
    }

    #[test]
    fn snapshot_is_frozen_against_later_mutation() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.add_edge(ids[0], ids[1]);
        let csr = CsrSnapshot::build(&g);
        g.remove_node(ids[1]);
        assert_eq!(csr.neighbors(ids[0]), &[ids[1]], "snapshot is a freeze");
        assert!(csr.contains(ids[1]));
        assert!(!g.contains(ids[1]));
    }

    #[test]
    fn out_of_range_ids_are_dead_not_panics() {
        let (g, _) = Graph::with_nodes(2);
        let csr = CsrSnapshot::build(&g);
        let ghost = NodeId(10_000);
        assert!(!csr.contains(ghost));
        assert_eq!(csr.neighbors(ghost), &[]);
        assert_eq!(csr.degree(ghost), 0);
    }

    #[test]
    fn isolated_live_node_differs_from_tombstone() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.remove_node(ids[1]);
        let csr = CsrSnapshot::build(&g);
        assert!(csr.contains(ids[0]), "isolated but live");
        assert!(!csr.contains(ids[1]), "tombstoned");
        assert_eq!(csr.neighbors(ids[0]), &[]);
        assert_eq!(csr.neighbors(ids[1]), &[]);
    }
}
