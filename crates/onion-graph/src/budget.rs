//! Thread budgeting for intra-graph parallelism.
//!
//! The parallel BFS kernel ([`crate::metrics::parallel_bfs_from_sources`])
//! can fan sources across threads, but the metrics entry points
//! (`sampled_diameter`, `diameter`, ...) are called from inside experiment
//! *parts* that an executor is already fanning across workers. Letting
//! every BFS sweep grab all cores would oversubscribe the machine as soon
//! as two parts run concurrently, so parallelism inside one part is
//! governed by an explicit **thread budget**:
//!
//! * the executor scopes a per-item budget around each work item with
//!   [`with_thread_budget`] (a thread-local, so concurrent items on
//!   different worker threads cannot see each other's budgets);
//! * standalone processes (or worker subprocesses, as a default) inherit
//!   a process-wide budget from the [`THREADS_ENV`] environment variable;
//! * with neither set, the budget is 1 and every metric runs exactly the
//!   sequential path.
//!
//! The budget only bounds *resource use*; results never depend on it —
//! the kernel writes each source's result into its slot by source index,
//! so any budget produces byte-identical output.

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable holding the process-wide default thread budget
/// (`ONIONBOTS_THREADS_PER_ITEM`). Read once, on first use; values that
/// are absent, unparseable or zero mean a budget of 1. The process
/// executor sets it on worker subprocesses so they inherit the parent's
/// per-item split even outside an explicitly scoped work item.
pub const THREADS_ENV: &str = "ONIONBOTS_THREADS_PER_ITEM";

thread_local! {
    /// The scoped per-thread budget; `None` falls back to the env default.
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parses one raw env value into a budget (`None` when it does not name a
/// usable thread count).
fn parse_env(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn env_default() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(THREADS_ENV)
            .ok()
            .as_deref()
            .and_then(parse_env)
            .unwrap_or(1)
    })
}

/// The thread budget governing intra-graph parallelism on the calling
/// thread: the innermost [`with_thread_budget`] scope if one is active,
/// else the [`THREADS_ENV`] process default, else 1.
pub fn thread_budget() -> usize {
    BUDGET.with(Cell::get).unwrap_or_else(env_default)
}

/// Runs `f` with the calling thread's budget set to `threads` (clamped to
/// at least 1), restoring the previous budget afterwards — also on panic,
/// via a drop guard, so a panicking work item cannot leak its budget into
/// the next item executed on the same worker thread.
pub fn with_thread_budget<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(BUDGET.with(|b| b.replace(Some(threads.max(1)))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The budget the current environment implies outside any scope —
    /// tests assert against this instead of a literal 1, so the suite
    /// passes even when the developer has exported [`THREADS_ENV`].
    fn ambient() -> usize {
        std::env::var(THREADS_ENV)
            .ok()
            .as_deref()
            .and_then(parse_env)
            .unwrap_or(1)
    }

    #[test]
    fn unscoped_budget_matches_the_environment() {
        assert_eq!(thread_budget(), ambient());
    }

    #[test]
    fn scoped_budgets_nest_and_restore() {
        let observed = with_thread_budget(4, || {
            let outer = thread_budget();
            let inner = with_thread_budget(2, thread_budget);
            (outer, thread_budget(), inner)
        });
        assert_eq!(observed, (4, 4, 2));
        assert_eq!(
            thread_budget(),
            ambient(),
            "scope exit restores the ambient default"
        );
    }

    #[test]
    fn zero_budget_is_clamped_to_one() {
        assert_eq!(with_thread_budget(0, thread_budget), 1);
    }

    #[test]
    fn budget_scope_survives_a_panic() {
        let result = std::panic::catch_unwind(|| {
            with_thread_budget(usize::MAX, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(thread_budget(), ambient(), "drop guard restored the budget");
    }

    #[test]
    fn budgets_are_per_thread() {
        with_thread_budget(6, || {
            let other = std::thread::spawn(thread_budget).join().unwrap();
            assert_eq!(other, ambient(), "a fresh thread sees the process default");
            assert_eq!(thread_budget(), 6);
        });
    }

    #[test]
    fn env_values_parse_conservatively() {
        assert_eq!(parse_env("4"), Some(4));
        assert_eq!(parse_env(" 16 "), Some(16));
        assert_eq!(parse_env("0"), None, "zero threads is not a budget");
        assert_eq!(parse_env("auto"), None, "auto is resolved by the CLI");
        assert_eq!(parse_env(""), None);
        assert_eq!(parse_env("-2"), None);
    }
}
