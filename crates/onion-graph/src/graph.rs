//! Undirected graph data structure used by the overlay simulations.
//!
//! Nodes are identified by [`NodeId`]s handed out by the graph; deletions are
//! supported (the whole evaluation of the paper is about node takedowns), so
//! the structure is a hash-based adjacency map rather than a dense matrix.
//!
//! ```
//! use onion_graph::graph::Graph;
//!
//! let mut g = Graph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! assert_eq!(g.degree(a), Some(1));
//! g.remove_node(a);
//! assert_eq!(g.degree(b), Some(0));
//! ```

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`Graph`].
///
/// Identifiers are never reused within one graph, so a `NodeId` remains a
/// valid "name" for a deleted node (useful when replaying takedown traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected simple graph (no self loops, no parallel edges).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: HashMap<NodeId, BTreeSet<NodeId>>,
    next_id: usize,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with `n` fresh nodes, returning their ids.
    pub fn with_nodes(n: usize) -> (Self, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids = (0..n).map(|_| g.add_node()).collect();
        (g, ids)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.adjacency.insert(id, BTreeSet::new());
        id
    }

    /// Returns `true` if `node` is present (i.e. not deleted).
    pub fn contains(&self, node: NodeId) -> bool {
        self.adjacency.contains_key(&node)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over the live node ids in ascending order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.adjacency.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Adds an undirected edge. Returns `true` if the edge was newly added,
    /// `false` if it already existed or was a self loop / referenced a missing
    /// node.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.contains(a) || !self.contains(b) {
            return false;
        }
        let inserted = self
            .adjacency
            .get_mut(&a)
            .expect("checked present")
            .insert(b);
        if inserted {
            self.adjacency
                .get_mut(&b)
                .expect("checked present")
                .insert(a);
            self.edge_count += 1;
        }
        inserted
    }

    /// Removes an undirected edge. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = self.adjacency.get_mut(&a).is_some_and(|set| set.remove(&b));
        if removed {
            if let Some(set) = self.adjacency.get_mut(&b) {
                set.remove(&a);
            }
            self.edge_count -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.get(&a).is_some_and(|set| set.contains(&b))
    }

    /// The neighbors of `node`, or `None` if the node is absent.
    pub fn neighbors(&self, node: NodeId) -> Option<&BTreeSet<NodeId>> {
        self.adjacency.get(&node)
    }

    /// The degree of `node`, or `None` if the node is absent.
    pub fn degree(&self, node: NodeId) -> Option<usize> {
        self.adjacency.get(&node).map(BTreeSet::len)
    }

    /// Removes a node and all incident edges, returning its former neighbors.
    ///
    /// Returns `None` if the node was not present.
    pub fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        let neighbors = self.adjacency.remove(&node)?;
        for n in &neighbors {
            if let Some(set) = self.adjacency.get_mut(n) {
                set.remove(&node);
            }
        }
        self.edge_count -= neighbors.len();
        Some(neighbors.into_iter().collect())
    }

    /// Maximum degree over live nodes (`0` for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency
            .values()
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over live nodes (`0` for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adjacency
            .values()
            .map(BTreeSet::len)
            .min()
            .unwrap_or(0)
    }

    /// Average degree over live nodes (`0.0` for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / self.adjacency.len() as f64
    }

    /// Lists all edges as `(smaller id, larger id)` pairs, sorted.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (&a, neighbors) in &self.adjacency {
            for &b in neighbors {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Checks internal invariants (symmetry, no self loops, edge count).
    /// Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for (&a, neighbors) in &self.adjacency {
            for &b in neighbors {
                if a == b {
                    return Err(format!("self loop at {a}"));
                }
                if !self.adjacency.get(&b).is_some_and(|set| set.contains(&a)) {
                    return Err(format!("asymmetric edge {a} -> {b}"));
                }
                counted += 1;
            }
        }
        if counted != self.edge_count * 2 {
            return Err(format!(
                "edge count mismatch: counted {} half-edges, recorded {} edges",
                counted, self.edge_count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(g.node_count(), 2);
        assert!(g.contains(a));
        assert!(g.contains(b));
        assert_eq!(g.degree(a), Some(0));
        assert_eq!(g.nodes(), vec![a, b]);
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let (mut g, ids) = Graph::with_nodes(3);
        assert!(g.add_edge(ids[0], ids[1]));
        assert!(
            !g.add_edge(ids[1], ids[0]),
            "duplicate edge must be rejected"
        );
        assert!(g.has_edge(ids[1], ids[0]));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.add_edge(ids[0], ids[0]), "self loops rejected");
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_to_missing_node_is_rejected() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.remove_node(ids[1]);
        assert!(!g.add_edge(ids[0], ids[1]));
        assert!(!g.add_edge(ids[1], ids[0]));
    }

    #[test]
    fn remove_node_returns_neighbors_and_cleans_edges() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[1], ids[2]);
        let neighbors = g.remove_node(ids[0]).unwrap();
        assert_eq!(neighbors, vec![ids[1], ids[2]]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(ids[1], ids[0]));
        assert_eq!(g.remove_node(ids[0]), None, "double removal returns None");
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_behaviour() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.add_edge(ids[0], ids[1]);
        assert!(g.remove_edge(ids[1], ids[0]));
        assert!(!g.remove_edge(ids[0], ids[1]));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_ids_are_never_reused() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.remove_node(a);
        let b = g.add_node();
        assert_ne!(a, b);
    }

    #[test]
    fn degree_statistics() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[0], ids[3]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_listing_is_sorted_and_complete() {
        let (mut g, ids) = Graph::with_nodes(3);
        g.add_edge(ids[2], ids[0]);
        g.add_edge(ids[1], ids[2]);
        assert_eq!(g.edges(), vec![(ids[0], ids[2]), (ids[1], ids[2])]);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Graph::new();
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.edges().is_empty());
        g.check_invariants().unwrap();
    }
}
