//! Undirected graph data structure used by the overlay simulations.
//!
//! Nodes are identified by [`NodeId`]s handed out by the graph. The
//! representation is an **index-addressed slab**: `NodeId(i)` is a direct
//! index into a `Vec` of node slots, and each live slot holds its neighbor
//! list as a **sorted `Vec<NodeId>`**. Deletions (the whole evaluation of
//! the paper is about node takedowns) tombstone the slot; identifiers are
//! never reused, so a `NodeId` remains a valid "name" for a deleted node
//! (useful when replaying takedown traces), while the emptied neighbor-list
//! allocations go on a free-list that [`Graph::add_node`] recycles.
//!
//! Compared to the previous `HashMap<NodeId, BTreeSet<NodeId>>` adjacency,
//! every lookup is an array index, neighbor iteration is a cache-friendly
//! slice walk, and iteration order is ascending **by construction** — no
//! hash-randomized order can ever leak into an RNG stream or a report
//! (the bug class that bit `SoapAttack` before it switched to `BTreeSet`s).
//! Degree stays small (the overlay prunes to `d_max`), so sorted-`Vec`
//! membership/insertion beats tree or hash nodes by a wide margin.
//!
//! ```
//! use onion_graph::graph::Graph;
//!
//! let mut g = Graph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! assert_eq!(g.degree(a), Some(1));
//! g.remove_node(a);
//! assert_eq!(g.degree(b), Some(0));
//! ```

use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`Graph`]: a direct index into the slab.
///
/// Identifiers are never reused within one graph, so a `NodeId` remains a
/// valid "name" for a deleted node (useful when replaying takedown traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Upper bound on pooled neighbor-list allocations kept for reuse; churny
/// workloads (SOAP clone spawning, the `scale` scenario's waves) recycle
/// them instead of hitting the allocator, but an unbounded pool would pin
/// memory proportional to the deletion count.
const FREE_POOL_LIMIT: usize = 1024;

/// An undirected simple graph (no self loops, no parallel edges) backed by
/// an index-addressed slab.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Node slots indexed by `NodeId.0`; `None` marks a deleted node.
    /// Live slots hold the neighbor list sorted ascending.
    slots: Vec<Option<Vec<NodeId>>>,
    /// Recycled neighbor-list allocations from deleted nodes (always
    /// empty vectors; only their capacity is reused).
    free_pool: Vec<Vec<NodeId>>,
    live_count: usize,
    edge_count: usize,
}

impl PartialEq for Graph {
    /// Equality over graph *content* (slots and edge count); the allocation
    /// free-list is an implementation detail and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots && self.edge_count == other.edge_count
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with `n` fresh nodes, returning their ids.
    pub fn with_nodes(n: usize) -> (Self, Vec<NodeId>) {
        let mut g = Graph::new();
        g.slots.reserve(n);
        let ids = (0..n).map(|_| g.add_node()).collect();
        (g, ids)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.slots.len());
        let mut list = self.free_pool.pop().unwrap_or_default();
        // Pooled lists are pushed empty, but clear defensively: a
        // deserialized graph could carry a non-empty pool (the offline
        // serde derive cannot skip the field), and a fresh node must never
        // start with phantom neighbors.
        list.clear();
        self.slots.push(Some(list));
        self.live_count += 1;
        id
    }

    /// Returns `true` if `node` is present (i.e. not deleted).
    pub fn contains(&self, node: NodeId) -> bool {
        self.slots.get(node.0).is_some_and(Option::is_some)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// One past the largest id ever allocated. Every live (or deleted)
    /// `NodeId` in this graph is strictly below this bound, so flat
    /// per-node arrays for traversals (`vec![u32::MAX; g.id_bound()]`) can
    /// be indexed by `NodeId.0` without bounds surprises.
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the live node ids in ascending order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| NodeId(i)))
            .collect()
    }

    /// Adds an undirected edge. Returns `true` if the edge was newly added,
    /// `false` if it already existed or was a self loop / referenced a
    /// missing node.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.contains(a) || !self.contains(b) {
            return false;
        }
        let list_a = self.slots[a.0].as_mut().expect("checked present");
        let Err(pos_a) = list_a.binary_search(&b) else {
            return false;
        };
        list_a.insert(pos_a, b);
        let list_b = self.slots[b.0].as_mut().expect("checked present");
        let pos_b = list_b
            .binary_search(&a)
            .expect_err("edge must be symmetric");
        list_b.insert(pos_b, a);
        self.edge_count += 1;
        true
    }

    /// Removes an undirected edge. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let Some(Some(list_a)) = self.slots.get_mut(a.0) else {
            return false;
        };
        let Ok(pos_a) = list_a.binary_search(&b) else {
            return false;
        };
        list_a.remove(pos_a);
        if let Some(Some(list_b)) = self.slots.get_mut(b.0) {
            if let Ok(pos_b) = list_b.binary_search(&a) {
                list_b.remove(pos_b);
            }
        }
        self.edge_count -= 1;
        true
    }

    /// Returns `true` if the edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a)
            .is_some_and(|list| list.binary_search(&b).is_ok())
    }

    /// The neighbors of `node` as a sorted slice, or `None` if the node is
    /// absent.
    pub fn neighbors(&self, node: NodeId) -> Option<&[NodeId]> {
        self.slots.get(node.0)?.as_deref()
    }

    /// The degree of `node`, or `None` if the node is absent.
    pub fn degree(&self, node: NodeId) -> Option<usize> {
        self.neighbors(node).map(<[NodeId]>::len)
    }

    /// Removes a node and all incident edges, returning its former
    /// neighbors in ascending order.
    ///
    /// Returns `None` if the node was not present.
    pub fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        let mut list = self.slots.get_mut(node.0)?.take()?;
        self.live_count -= 1;
        self.edge_count -= list.len();
        // Degree is bounded (the overlay prunes to d_max), so copying the
        // tiny neighbor list out lets the allocation itself go back on the
        // free-list for the next add_node.
        let neighbors = list.clone();
        for &n in &neighbors {
            if let Some(Some(other)) = self.slots.get_mut(n.0) {
                if let Ok(pos) = other.binary_search(&node) {
                    other.remove(pos);
                }
            }
        }
        if self.free_pool.len() < FREE_POOL_LIMIT {
            list.clear();
            self.free_pool.push(list);
        }
        Some(neighbors)
    }

    /// Maximum degree over live nodes (`0` for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(Vec::len))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over live nodes (`0` for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(Vec::len))
            .min()
            .unwrap_or(0)
    }

    /// Average degree over live nodes (`0.0` for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.live_count == 0 {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / self.live_count as f64
    }

    /// Lists all edges as `(smaller id, larger id)` pairs, sorted.
    ///
    /// The slab walk visits slots ascending and each neighbor list is
    /// sorted, so the output is sorted by construction.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (i, slot) in self.slots.iter().enumerate() {
            let a = NodeId(i);
            if let Some(neighbors) = slot {
                for &b in neighbors {
                    if a < b {
                        out.push((a, b));
                    }
                }
            }
        }
        out
    }

    /// Checks internal invariants (symmetry, no self loops, sorted and
    /// deduplicated neighbor lists, live/edge counts). Intended for tests
    /// and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0usize;
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let a = NodeId(i);
            let Some(neighbors) = slot else { continue };
            live += 1;
            for pair in neighbors.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!(
                        "neighbor list of {a} not strictly sorted: {} then {}",
                        pair[0], pair[1]
                    ));
                }
            }
            for &b in neighbors {
                if a == b {
                    return Err(format!("self loop at {a}"));
                }
                if !self.has_edge(b, a) {
                    return Err(format!("asymmetric edge {a} -> {b}"));
                }
                counted += 1;
            }
        }
        if live != self.live_count {
            return Err(format!(
                "live count mismatch: counted {live}, recorded {}",
                self.live_count
            ));
        }
        if counted != self.edge_count * 2 {
            return Err(format!(
                "edge count mismatch: counted {} half-edges, recorded {} edges",
                counted, self.edge_count
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(g.node_count(), 2);
        assert!(g.contains(a));
        assert!(g.contains(b));
        assert_eq!(g.degree(a), Some(0));
        assert_eq!(g.nodes(), vec![a, b]);
        assert_eq!(g.id_bound(), 2);
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let (mut g, ids) = Graph::with_nodes(3);
        assert!(g.add_edge(ids[0], ids[1]));
        assert!(
            !g.add_edge(ids[1], ids[0]),
            "duplicate edge must be rejected"
        );
        assert!(g.has_edge(ids[1], ids[0]));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.add_edge(ids[0], ids[0]), "self loops rejected");
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_to_missing_node_is_rejected() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.remove_node(ids[1]);
        assert!(!g.add_edge(ids[0], ids[1]));
        assert!(!g.add_edge(ids[1], ids[0]));
    }

    #[test]
    fn remove_node_returns_neighbors_and_cleans_edges() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[1], ids[2]);
        let neighbors = g.remove_node(ids[0]).unwrap();
        assert_eq!(neighbors, vec![ids[1], ids[2]]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(ids[1], ids[0]));
        assert_eq!(g.remove_node(ids[0]), None, "double removal returns None");
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_behaviour() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.add_edge(ids[0], ids[1]);
        assert!(g.remove_edge(ids[1], ids[0]));
        assert!(!g.remove_edge(ids[0], ids[1]));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_ids_are_never_reused() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.remove_node(a);
        let b = g.add_node();
        assert_ne!(a, b);
        assert!(!g.contains(a));
        assert!(g.contains(b));
        assert_eq!(g.id_bound(), 2);
    }

    #[test]
    fn deleted_slot_stays_a_tombstone() {
        let (mut g, ids) = Graph::with_nodes(3);
        g.add_edge(ids[0], ids[1]);
        g.remove_node(ids[1]);
        assert_eq!(g.neighbors(ids[1]), None);
        assert_eq!(g.degree(ids[1]), None);
        assert!(!g.has_edge(ids[0], ids[1]));
        assert_eq!(g.nodes(), vec![ids[0], ids[2]]);
        // Operations on the tombstone are inert, not panics.
        assert!(!g.remove_edge(ids[1], ids[0]));
        assert_eq!(g.remove_node(ids[1]), None);
    }

    #[test]
    fn out_of_range_ids_are_absent_not_panics() {
        let (g, _) = Graph::with_nodes(2);
        let ghost = NodeId(10_000);
        assert!(!g.contains(ghost));
        assert_eq!(g.neighbors(ghost), None);
        assert_eq!(g.degree(ghost), None);
        assert!(!g.has_edge(ghost, NodeId(0)));
        assert!(!g.has_edge(NodeId(0), ghost));
    }

    #[test]
    fn neighbor_lists_stay_sorted_under_mutation() {
        let (mut g, ids) = Graph::with_nodes(6);
        // Insert in descending order; the list must still come out sorted.
        for &peer in ids[1..].iter().rev() {
            g.add_edge(ids[0], peer);
        }
        assert_eq!(g.neighbors(ids[0]).unwrap(), &ids[1..]);
        g.remove_edge(ids[0], ids[3]);
        let expected: Vec<NodeId> = ids[1..].iter().copied().filter(|&n| n != ids[3]).collect();
        assert_eq!(g.neighbors(ids[0]).unwrap(), &expected[..]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_statistics() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[0], ids[3]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_listing_is_sorted_and_complete() {
        let (mut g, ids) = Graph::with_nodes(3);
        g.add_edge(ids[2], ids[0]);
        g.add_edge(ids[1], ids[2]);
        assert_eq!(g.edges(), vec![(ids[0], ids[2]), (ids[1], ids[2])]);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Graph::new();
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.edges().is_empty());
        assert_eq!(g.id_bound(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn equality_ignores_the_allocation_pool() {
        let (mut a, ids_a) = Graph::with_nodes(3);
        let (mut b, ids_b) = Graph::with_nodes(3);
        a.add_edge(ids_a[0], ids_a[1]);
        b.add_edge(ids_b[0], ids_b[1]);
        // Give `a` a connected extra node and `b` an isolated one before
        // deleting both: the surviving content is identical but the pooled
        // allocations differ (a's recycled list had capacity, b's did not).
        let extra_a = a.add_node();
        a.add_edge(extra_a, ids_a[0]);
        a.remove_node(extra_a);
        let extra_b = b.add_node();
        b.remove_node(extra_b);
        assert_eq!(a, b);
    }
}
