//! Undirected graph data structure used by the overlay simulations.
//!
//! Nodes are identified by [`NodeId`]s handed out by the graph. The
//! representation is an **index-addressed slab**: `NodeId(i)` is a direct
//! index into a `Vec` of node slots, and each live slot holds its neighbor
//! list as a **sorted `Vec<NodeId>`**. Deletions (the whole evaluation of
//! the paper is about node takedowns) tombstone the slot; identifiers are
//! never reused, so a `NodeId` remains a valid "name" for a deleted node
//! (useful when replaying takedown traces), while the emptied neighbor-list
//! allocations go on a free-list that [`Graph::add_node`] recycles.
//!
//! Compared to the previous `HashMap<NodeId, BTreeSet<NodeId>>` adjacency,
//! every lookup is an array index, neighbor iteration is a cache-friendly
//! slice walk, and iteration order is ascending **by construction** — no
//! hash-randomized order can ever leak into an RNG stream or a report
//! (the bug class that bit `SoapAttack` before it switched to `BTreeSet`s).
//! Degree stays small (the overlay prunes to `d_max`), so sorted-`Vec`
//! membership/insertion beats tree or hash nodes by a wide margin.
//!
//! ```
//! use onion_graph::graph::Graph;
//!
//! let mut g = Graph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! assert_eq!(g.degree(a), Some(1));
//! g.remove_node(a);
//! assert_eq!(g.degree(b), Some(0));
//! ```

use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`Graph`]: a direct index into the slab.
///
/// Identifiers are never reused within one graph, so a `NodeId` remains a
/// valid "name" for a deleted node (useful when replaying takedown traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Upper bound on pooled neighbor-list allocations kept for reuse; churny
/// workloads (SOAP clone spawning, the `scale` scenario's waves) recycle
/// them instead of hitting the allocator, but an unbounded pool would pin
/// memory proportional to the deletion count.
const FREE_POOL_LIMIT: usize = 1024;

/// An undirected simple graph (no self loops, no parallel edges) backed by
/// an index-addressed slab.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Node slots indexed by `NodeId.0`; `None` marks a deleted node.
    /// Live slots hold the neighbor list sorted ascending.
    slots: Vec<Option<Vec<NodeId>>>,
    /// Recycled neighbor-list allocations from deleted nodes (always
    /// empty vectors; only their capacity is reused).
    free_pool: Vec<Vec<NodeId>>,
    live_count: usize,
    edge_count: usize,
}

impl PartialEq for Graph {
    /// Equality over graph *content* (slots and edge count); the allocation
    /// free-list is an implementation detail and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots && self.edge_count == other.edge_count
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty graph with `n` fresh nodes, returning their ids.
    pub fn with_nodes(n: usize) -> (Self, Vec<NodeId>) {
        let mut g = Graph::new();
        g.slots.reserve(n);
        let ids = (0..n).map(|_| g.add_node()).collect();
        (g, ids)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.slots.len());
        let mut list = self.free_pool.pop().unwrap_or_default();
        // Pooled lists are pushed empty, but clear defensively: a
        // deserialized graph could carry a non-empty pool (the offline
        // serde derive cannot skip the field), and a fresh node must never
        // start with phantom neighbors.
        list.clear();
        self.slots.push(Some(list));
        self.live_count += 1;
        id
    }

    /// Returns `true` if `node` is present (i.e. not deleted).
    pub fn contains(&self, node: NodeId) -> bool {
        self.slots.get(node.0).is_some_and(Option::is_some)
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// One past the largest id ever allocated. Every live (or deleted)
    /// `NodeId` in this graph is strictly below this bound, so flat
    /// per-node arrays for traversals (`vec![u32::MAX; g.id_bound()]`) can
    /// be indexed by `NodeId.0` without bounds surprises.
    pub fn id_bound(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the live node ids in ascending order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|_| NodeId(i)))
            .collect()
    }

    /// Adds an undirected edge. Returns `true` if the edge was newly added,
    /// `false` if it already existed or was a self loop / referenced a
    /// missing node.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.contains(a) || !self.contains(b) {
            return false;
        }
        let list_a = self.slots[a.0].as_mut().expect("checked present");
        let Err(pos_a) = list_a.binary_search(&b) else {
            return false;
        };
        list_a.insert(pos_a, b);
        let list_b = self.slots[b.0].as_mut().expect("checked present");
        let pos_b = list_b
            .binary_search(&a)
            .expect_err("edge must be symmetric");
        list_b.insert(pos_b, a);
        self.edge_count += 1;
        true
    }

    /// Removes an undirected edge. Returns `true` if it existed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let Some(Some(list_a)) = self.slots.get_mut(a.0) else {
            return false;
        };
        let Ok(pos_a) = list_a.binary_search(&b) else {
            return false;
        };
        list_a.remove(pos_a);
        if let Some(Some(list_b)) = self.slots.get_mut(b.0) {
            if let Ok(pos_b) = list_b.binary_search(&a) {
                list_b.remove(pos_b);
            }
        }
        self.edge_count -= 1;
        true
    }

    /// Returns `true` if the edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a)
            .is_some_and(|list| list.binary_search(&b).is_ok())
    }

    /// The neighbors of `node` as a sorted slice, or `None` if the node is
    /// absent.
    pub fn neighbors(&self, node: NodeId) -> Option<&[NodeId]> {
        self.slots.get(node.0)?.as_deref()
    }

    /// The degree of `node`, or `None` if the node is absent.
    pub fn degree(&self, node: NodeId) -> Option<usize> {
        self.neighbors(node).map(<[NodeId]>::len)
    }

    /// Removes a node and all incident edges, returning its former
    /// neighbors in ascending order.
    ///
    /// Returns `None` if the node was not present.
    pub fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        let mut list = self.slots.get_mut(node.0)?.take()?;
        self.live_count -= 1;
        self.edge_count -= list.len();
        // Degree is bounded (the overlay prunes to d_max), so copying the
        // tiny neighbor list out lets the allocation itself go back on the
        // free-list for the next add_node.
        let neighbors = list.clone();
        for &n in &neighbors {
            if let Some(Some(other)) = self.slots.get_mut(n.0) {
                if let Ok(pos) = other.binary_search(&node) {
                    other.remove(pos);
                }
            }
        }
        if self.free_pool.len() < FREE_POOL_LIMIT {
            list.clear();
            self.free_pool.push(list);
        }
        Some(neighbors)
    }

    /// Inserts a batch of undirected edges with **deferred sorting**:
    /// every half-edge is appended first and each touched neighbor list is
    /// sorted and merged exactly once, instead of paying a binary search
    /// plus `Vec::insert` shift per edge the way [`add_edge`](Self::add_edge)
    /// does. Self loops, edges touching absent nodes, duplicates within the
    /// batch and edges that already exist are all skipped, so the resulting
    /// graph is exactly the one a sequential `add_edge` loop over `edges`
    /// produces. Returns the number of edges actually added (the number of
    /// `true`s that loop would have returned).
    pub fn add_edges_bulk(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        let mut half: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            if a == b || !self.contains(a) || !self.contains(b) {
                continue;
            }
            half.push((a, b));
            half.push((b, a));
        }
        half.sort_unstable();
        let mut added_half = 0usize;
        let mut i = 0;
        while i < half.len() {
            let node = half[i].0;
            let mut j = i;
            while j < half.len() && half[j].0 == node {
                j += 1;
            }
            let list = self.slots[node.0].as_mut().expect("validated present");
            added_half += merge_sorted_candidates(list, &half[i..j]);
            i = j;
        }
        debug_assert!(
            added_half.is_multiple_of(2),
            "half-edge insertion must be symmetric"
        );
        self.edge_count += added_half / 2;
        added_half / 2
    }

    /// [`add_edges_bulk`](Self::add_edges_bulk), partitioned across the
    /// disjoint id ranges delimited by `bounds` and fanned over up to
    /// `threads` workers. `bounds` lists the range cut points ascending
    /// (e.g. a [shard grid's] boundaries); every neighbor list belongs to
    /// exactly one range, each range is handled by exactly one worker on a
    /// `split_at_mut` view of the slab, and a range's insertions depend
    /// only on the batch and the prior graph — so the result is
    /// **byte-identical at any thread count** and equal to the sequential
    /// [`add_edges_bulk`](Self::add_edges_bulk). Ids at or past the last
    /// cut point fall into the final range.
    ///
    /// [shard grid's]: Self::add_edges_bulk_partitioned
    pub fn add_edges_bulk_partitioned(
        &mut self,
        edges: &[(NodeId, NodeId)],
        bounds: &[usize],
        threads: usize,
    ) -> usize {
        // Interior cut points, clamped to the slab and deduplicated; the
        // implicit outer bounds are 0 and id_bound.
        let mut cuts: Vec<usize> = bounds
            .iter()
            .copied()
            .filter(|&b| b > 0 && b < self.slots.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let ranges = cuts.len() + 1;
        let threads = threads.clamp(1, ranges);
        if ranges == 1 || threads == 1 {
            return self.add_edges_bulk(edges);
        }
        let owner = |id: usize| cuts.partition_point(|&c| c <= id);
        // Bucket each valid half-edge by the range owning its list.
        let mut buckets: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); ranges];
        for &(a, b) in edges {
            if a == b || !self.contains(a) || !self.contains(b) {
                continue;
            }
            buckets[owner(a.0)].push((a, b));
            buckets[owner(b.0)].push((b, a));
        }
        // Split the slab at the cut points and hand each worker its
        // statically assigned ranges (round-robin by range index, so the
        // work distribution — and the output — never depends on timing).
        // One range's task: its first slot index, its slab chunk, and
        // the half-edges destined for lists it owns.
        type RangeTask<'a> = (usize, &'a mut [Option<Vec<NodeId>>], Vec<(NodeId, NodeId)>);
        let mut tasks: Vec<Vec<RangeTask<'_>>> = Vec::with_capacity(threads);
        tasks.resize_with(threads, Vec::new);
        let mut rest: &mut [Option<Vec<NodeId>>] = &mut self.slots;
        let mut start = 0usize;
        for (range, bucket) in buckets.into_iter().enumerate() {
            let end = cuts.get(range).copied().unwrap_or(start + rest.len());
            let (chunk, tail) = rest.split_at_mut(end - start);
            tasks[range % threads].push((start, chunk, bucket));
            rest = tail;
            start = end;
        }
        let added_half: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = tasks
                .into_iter()
                .map(|assigned| {
                    scope.spawn(move || {
                        let mut added = 0usize;
                        for (start, chunk, mut bucket) in assigned {
                            bucket.sort_unstable();
                            let mut i = 0;
                            while i < bucket.len() {
                                let node = bucket[i].0;
                                let mut j = i;
                                while j < bucket.len() && bucket[j].0 == node {
                                    j += 1;
                                }
                                let list =
                                    chunk[node.0 - start].as_mut().expect("validated present");
                                added += merge_sorted_candidates(list, &bucket[i..j]);
                                i = j;
                            }
                        }
                        added
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bulk-insert worker panicked"))
                .sum()
        });
        debug_assert!(
            added_half.is_multiple_of(2),
            "half-edge insertion must be symmetric"
        );
        self.edge_count += added_half / 2;
        added_half / 2
    }

    /// Concatenates per-range graphs into one slab: part `p`'s node `i`
    /// becomes `NodeId(offset_p + i)` where `offset_p` is the sum of the
    /// preceding parts' [`id_bound`](Self::id_bound)s, and every neighbor
    /// id is shifted accordingly. Tombstones and edge counts carry over;
    /// allocation free-pools do not (they are a reuse detail, invisible to
    /// equality). This is the deterministic ascending merge of a sharded
    /// construction: each part is built independently, then spliced in
    /// part order.
    pub fn assemble(parts: impl IntoIterator<Item = Graph>) -> Graph {
        let mut assembled = Graph::new();
        for part in parts {
            let offset = assembled.slots.len();
            assembled.live_count += part.live_count;
            assembled.edge_count += part.edge_count;
            assembled.slots.reserve(part.slots.len());
            for slot in part.slots {
                assembled.slots.push(slot.map(|mut list| {
                    for id in &mut list {
                        id.0 += offset;
                    }
                    list
                }));
            }
        }
        assembled
    }

    /// Maximum degree over live nodes (`0` for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(Vec::len))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over live nodes (`0` for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(Vec::len))
            .min()
            .unwrap_or(0)
    }

    /// Average degree over live nodes (`0.0` for an empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.live_count == 0 {
            return 0.0;
        }
        2.0 * self.edge_count as f64 / self.live_count as f64
    }

    /// Lists all edges as `(smaller id, larger id)` pairs, sorted.
    ///
    /// The slab walk visits slots ascending and each neighbor list is
    /// sorted, so the output is sorted by construction.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (i, slot) in self.slots.iter().enumerate() {
            let a = NodeId(i);
            if let Some(neighbors) = slot {
                for &b in neighbors {
                    if a < b {
                        out.push((a, b));
                    }
                }
            }
        }
        out
    }

    /// Checks internal invariants (symmetry, no self loops, sorted and
    /// deduplicated neighbor lists, live/edge counts). Intended for tests
    /// and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counted = 0usize;
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let a = NodeId(i);
            let Some(neighbors) = slot else { continue };
            live += 1;
            for pair in neighbors.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!(
                        "neighbor list of {a} not strictly sorted: {} then {}",
                        pair[0], pair[1]
                    ));
                }
            }
            for &b in neighbors {
                if a == b {
                    return Err(format!("self loop at {a}"));
                }
                if !self.has_edge(b, a) {
                    return Err(format!("asymmetric edge {a} -> {b}"));
                }
                counted += 1;
            }
        }
        if live != self.live_count {
            return Err(format!(
                "live count mismatch: counted {live}, recorded {}",
                self.live_count
            ));
        }
        if counted != self.edge_count * 2 {
            return Err(format!(
                "edge count mismatch: counted {} half-edges, recorded {} edges",
                counted, self.edge_count
            ));
        }
        Ok(())
    }
}

/// Merges the peer halves of a sorted half-edge run `(node, peer)*` into
/// `node`'s sorted neighbor list, skipping peers already present and
/// duplicates within the run, and returns how many were appended. The one
/// deferred sort per touched list happens here — candidates arrive sorted,
/// so existing membership is a binary search over the original prefix and
/// the final sort sees an almost-sorted vector.
fn merge_sorted_candidates(list: &mut Vec<NodeId>, run: &[(NodeId, NodeId)]) -> usize {
    let old_len = list.len();
    let mut appended = 0usize;
    let mut prev: Option<NodeId> = None;
    for &(_, peer) in run {
        if prev == Some(peer) {
            continue;
        }
        prev = Some(peer);
        if list[..old_len].binary_search(&peer).is_err() {
            list.push(peer);
            appended += 1;
        }
    }
    if appended > 0 {
        list.sort_unstable();
    }
    appended
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_nodes() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(g.node_count(), 2);
        assert!(g.contains(a));
        assert!(g.contains(b));
        assert_eq!(g.degree(a), Some(0));
        assert_eq!(g.nodes(), vec![a, b]);
        assert_eq!(g.id_bound(), 2);
    }

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let (mut g, ids) = Graph::with_nodes(3);
        assert!(g.add_edge(ids[0], ids[1]));
        assert!(
            !g.add_edge(ids[1], ids[0]),
            "duplicate edge must be rejected"
        );
        assert!(g.has_edge(ids[1], ids[0]));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.add_edge(ids[0], ids[0]), "self loops rejected");
        g.check_invariants().unwrap();
    }

    #[test]
    fn edge_to_missing_node_is_rejected() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.remove_node(ids[1]);
        assert!(!g.add_edge(ids[0], ids[1]));
        assert!(!g.add_edge(ids[1], ids[0]));
    }

    #[test]
    fn remove_node_returns_neighbors_and_cleans_edges() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[1], ids[2]);
        let neighbors = g.remove_node(ids[0]).unwrap();
        assert_eq!(neighbors, vec![ids[1], ids[2]]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(ids[1], ids[0]));
        assert_eq!(g.remove_node(ids[0]), None, "double removal returns None");
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_behaviour() {
        let (mut g, ids) = Graph::with_nodes(2);
        g.add_edge(ids[0], ids[1]);
        assert!(g.remove_edge(ids[1], ids[0]));
        assert!(!g.remove_edge(ids[0], ids[1]));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_ids_are_never_reused() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.remove_node(a);
        let b = g.add_node();
        assert_ne!(a, b);
        assert!(!g.contains(a));
        assert!(g.contains(b));
        assert_eq!(g.id_bound(), 2);
    }

    #[test]
    fn deleted_slot_stays_a_tombstone() {
        let (mut g, ids) = Graph::with_nodes(3);
        g.add_edge(ids[0], ids[1]);
        g.remove_node(ids[1]);
        assert_eq!(g.neighbors(ids[1]), None);
        assert_eq!(g.degree(ids[1]), None);
        assert!(!g.has_edge(ids[0], ids[1]));
        assert_eq!(g.nodes(), vec![ids[0], ids[2]]);
        // Operations on the tombstone are inert, not panics.
        assert!(!g.remove_edge(ids[1], ids[0]));
        assert_eq!(g.remove_node(ids[1]), None);
    }

    #[test]
    fn out_of_range_ids_are_absent_not_panics() {
        let (g, _) = Graph::with_nodes(2);
        let ghost = NodeId(10_000);
        assert!(!g.contains(ghost));
        assert_eq!(g.neighbors(ghost), None);
        assert_eq!(g.degree(ghost), None);
        assert!(!g.has_edge(ghost, NodeId(0)));
        assert!(!g.has_edge(NodeId(0), ghost));
    }

    #[test]
    fn neighbor_lists_stay_sorted_under_mutation() {
        let (mut g, ids) = Graph::with_nodes(6);
        // Insert in descending order; the list must still come out sorted.
        for &peer in ids[1..].iter().rev() {
            g.add_edge(ids[0], peer);
        }
        assert_eq!(g.neighbors(ids[0]).unwrap(), &ids[1..]);
        g.remove_edge(ids[0], ids[3]);
        let expected: Vec<NodeId> = ids[1..].iter().copied().filter(|&n| n != ids[3]).collect();
        assert_eq!(g.neighbors(ids[0]).unwrap(), &expected[..]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_statistics() {
        let (mut g, ids) = Graph::with_nodes(4);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[0], ids[3]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_listing_is_sorted_and_complete() {
        let (mut g, ids) = Graph::with_nodes(3);
        g.add_edge(ids[2], ids[0]);
        g.add_edge(ids[1], ids[2]);
        assert_eq!(g.edges(), vec![(ids[0], ids[2]), (ids[1], ids[2])]);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Graph::new();
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.edges().is_empty());
        assert_eq!(g.id_bound(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn bulk_insertion_equals_sequential_insertion() {
        let (mut bulk, ids) = Graph::with_nodes(8);
        let (mut sequential, _) = Graph::with_nodes(8);
        bulk.remove_node(ids[7]);
        sequential.remove_node(ids[7]);
        let batch = vec![
            (ids[0], ids[1]),
            (ids[1], ids[0]), // duplicate in reverse orientation
            (ids[2], ids[2]), // self loop
            (ids[3], ids[7]), // dead endpoint
            (ids[4], ids[5]),
            (ids[0], ids[1]), // duplicate verbatim
            (ids[5], ids[4]), // another reverse duplicate
            (ids[1], ids[6]),
        ];
        let added = bulk.add_edges_bulk(&batch);
        let sequential_added = batch
            .iter()
            .filter(|&&(a, b)| sequential.add_edge(a, b))
            .count();
        assert_eq!(added, sequential_added);
        assert_eq!(added, 3);
        assert_eq!(bulk, sequential);
        bulk.check_invariants().unwrap();
        // A second identical batch is a full no-op.
        assert_eq!(bulk.add_edges_bulk(&batch), 0);
        assert_eq!(bulk, sequential);
    }

    #[test]
    fn bulk_insertion_merges_into_existing_lists() {
        let (mut g, ids) = Graph::with_nodes(5);
        g.add_edge(ids[0], ids[2]);
        g.add_edge(ids[0], ids[4]);
        let added = g.add_edges_bulk(&[(ids[0], ids[1]), (ids[0], ids[2]), (ids[3], ids[0])]);
        assert_eq!(added, 2, "one of the three already existed");
        assert_eq!(
            g.neighbors(ids[0]).unwrap(),
            &[ids[1], ids[2], ids[3], ids[4]]
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn partitioned_bulk_insertion_matches_sequential_at_any_thread_count() {
        let batch: Vec<(NodeId, NodeId)> = (0..40)
            .flat_map(|i| {
                [
                    (NodeId(i), NodeId((i * 7 + 3) % 40)),
                    (NodeId((i * 13 + 5) % 40), NodeId(i)),
                ]
            })
            .collect();
        let (mut reference, _) = Graph::with_nodes(40);
        let reference_added = reference.add_edges_bulk(&batch);
        for threads in [1usize, 2, 3, 8] {
            let (mut g, _) = Graph::with_nodes(40);
            let added = g.add_edges_bulk_partitioned(&batch, &[10, 20, 30], threads);
            assert_eq!(added, reference_added, "threads={threads}");
            assert_eq!(g, reference, "threads={threads}");
            g.check_invariants().unwrap();
        }
        // Degenerate grids: no interior cuts, cuts past the slab, unsorted
        // and duplicated cuts all degrade to the sequential path or to a
        // smaller effective grid — never to a wrong graph.
        for bounds in [vec![], vec![0, 40, 500], vec![30, 10, 10]] {
            let (mut g, _) = Graph::with_nodes(40);
            assert_eq!(
                g.add_edges_bulk_partitioned(&batch, &bounds, 4),
                reference_added
            );
            assert_eq!(g, reference, "bounds={bounds:?}");
        }
    }

    #[test]
    fn assemble_concatenates_parts_with_offsets() {
        let (mut a, ids_a) = Graph::with_nodes(3);
        a.add_edge(ids_a[0], ids_a[2]);
        a.remove_node(ids_a[1]); // tombstone carries over
        let (mut b, ids_b) = Graph::with_nodes(2);
        b.add_edge(ids_b[0], ids_b[1]);
        let g = Graph::assemble([a, b]);
        assert_eq!(g.id_bound(), 5);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(3), NodeId(4)), "part-1 ids shifted by 3");
        assert!(!g.contains(NodeId(1)), "tombstone preserved");
        g.check_invariants().unwrap();
        // Assembling one part is the identity on content.
        let (mut solo, ids) = Graph::with_nodes(4);
        solo.add_edge(ids[1], ids[3]);
        assert_eq!(Graph::assemble([solo.clone()]), solo);
        // Assembling nothing is the empty graph.
        assert_eq!(Graph::assemble([]), Graph::new());
    }

    #[test]
    fn equality_ignores_the_allocation_pool() {
        let (mut a, ids_a) = Graph::with_nodes(3);
        let (mut b, ids_b) = Graph::with_nodes(3);
        a.add_edge(ids_a[0], ids_a[1]);
        b.add_edge(ids_b[0], ids_b[1]);
        // Give `a` a connected extra node and `b` an isolated one before
        // deleting both: the surviving content is identical but the pooled
        // allocations differ (a's recycled list had capacity, b's did not).
        let extra_a = a.add_node();
        a.add_edge(extra_a, ids_a[0]);
        a.remove_node(extra_a);
        let extra_b = b.add_node();
        b.remove_node(extra_b);
        assert_eq!(a, b);
    }
}
