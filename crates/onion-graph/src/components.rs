//! Connected-component analysis.
//!
//! The paper's Figures 5a/5b plot the number of connected components of DDSR
//! versus a normal graph as nodes are deleted, and Figure 6 measures how many
//! simultaneous deletions are needed before the graph partitions (~40% for
//! 10-regular graphs). These helpers provide the underlying measurements.
//!
//! Every sweep is generic over [`Adjacency`], so it runs identically on the
//! mutable slab [`Graph`] and on a frozen [`CsrSnapshot`] — measurement
//! phases that already hold a snapshot (see [`crate::metrics::path_metrics`])
//! reuse it instead of re-walking the slab. The counting helpers
//! ([`component_count`], [`largest_component_size`],
//! [`largest_component_fraction`]) deliberately do **not** materialize the
//! component vectors: a per-wave robustness sample over a million-node
//! overlay needs one number, not a million sorted node ids.

use crate::csr::CsrSnapshot;
use crate::graph::{Graph, NodeId};
use crate::metrics::Adjacency;

/// Returns the connected components as sorted lists of node ids (largest
/// component first, ties broken by smallest node id).
///
/// One flat-array BFS sweep over the slab: a `Vec<bool>` indexed by node id
/// tracks visitation and each component vector doubles as its own BFS
/// queue, so the whole pass is `O(n + m)` with no hashing.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    connected_components_impl(graph)
}

/// [`connected_components`] over a frozen [`CsrSnapshot`] — identical
/// output (the snapshot preserves slot and neighbor order), one dense
/// read-only traversal.
pub fn connected_components_csr(csr: &CsrSnapshot) -> Vec<Vec<NodeId>> {
    connected_components_impl(csr)
}

fn connected_components_impl<A: Adjacency + ?Sized>(adj: &A) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; adj.id_bound()];
    let mut components = Vec::new();
    for node in adj.live_nodes() {
        if visited[node.0] {
            continue;
        }
        visited[node.0] = true;
        let mut component = vec![node];
        let mut head = 0usize;
        while head < component.len() {
            let u = component[head];
            head += 1;
            for &v in adj.neighbors_of(u) {
                if !visited[v.0] {
                    visited[v.0] = true;
                    component.push(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.first().cmp(&b.first()))
    });
    components
}

/// One counting sweep: `(component count, largest component size, a seed
/// node of the largest component)` without materializing any component
/// vector — the queue is reused across components and nothing is sorted.
/// Returns `None` for an empty graph.
///
/// Seeds are visited in ascending id order and the maximum is updated
/// strictly, so the reported largest component ties exactly like
/// [`connected_components`] orders them: by size, then by smallest
/// member id. A BFS from the seed re-derives the largest component's
/// membership in `O(largest)` when a caller needs it (see
/// `metrics::path_metrics`).
pub(crate) fn component_seed_scan<A: Adjacency + ?Sized>(
    adj: &A,
) -> Option<(usize, usize, NodeId)> {
    let mut visited = vec![false; adj.id_bound()];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut count = 0usize;
    let mut largest = 0usize;
    let mut largest_seed = None;
    for node in adj.live_nodes() {
        if visited[node.0] {
            continue;
        }
        count += 1;
        visited[node.0] = true;
        queue.clear();
        queue.push(node);
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in adj.neighbors_of(u) {
                if !visited[v.0] {
                    visited[v.0] = true;
                    queue.push(v);
                }
            }
        }
        if queue.len() > largest {
            largest = queue.len();
            largest_seed = Some(node);
        }
    }
    largest_seed.map(|seed| (count, largest, seed))
}

/// Number of connected components (`0` for an empty graph). Generic over
/// [`Adjacency`]: pass a [`CsrSnapshot`] to count over an existing freeze
/// instead of re-walking the slab.
pub fn component_count<A: Adjacency + ?Sized>(adj: &A) -> usize {
    component_seed_scan(adj).map_or(0, |(count, _, _)| count)
}

/// Size of the largest connected component (`0` for an empty graph).
/// Generic over [`Adjacency`], like [`component_count`].
pub fn largest_component_size<A: Adjacency + ?Sized>(adj: &A) -> usize {
    component_seed_scan(adj).map_or(0, |(_, largest, _)| largest)
}

/// Returns `true` if the graph has at most one connected component.
///
/// The empty graph is considered connected (there is nothing to partition),
/// matching how the partition-threshold experiment treats a fully deleted
/// botnet.
pub fn is_connected(graph: &Graph) -> bool {
    component_count(graph) <= 1
}

/// Fraction of live nodes contained in the largest component (`1.0` for the
/// empty graph by the same convention as [`is_connected`]).
pub fn largest_component_fraction(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 1.0;
    }
    largest_component_size(graph) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_regular;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_is_connected_with_zero_components() {
        let g = Graph::new();
        assert_eq!(component_count(&g), 0);
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 0);
        assert_eq!(largest_component_fraction(&g), 1.0);
    }

    #[test]
    fn isolated_nodes_each_form_a_component() {
        let (g, _) = Graph::with_nodes(4);
        assert_eq!(component_count(&g), 4);
        assert!(!is_connected(&g));
        assert_eq!(largest_component_size(&g), 1);
    }

    #[test]
    fn two_triangles_are_two_components() {
        let (mut g, ids) = Graph::with_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(ids[a], ids[b]);
        }
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
        assert!((largest_component_fraction(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn components_sorted_largest_first() {
        let (mut g, ids) = Graph::with_nodes(5);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[3], ids[4]);
        let comps = connected_components(&g);
        assert_eq!(comps[0], vec![ids[0], ids[1], ids[2]]);
        assert_eq!(comps[1], vec![ids[3], ids[4]]);
    }

    #[test]
    fn random_regular_graph_is_connected() {
        // A random 10-regular graph on 500 nodes is connected with
        // overwhelming probability.
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_regular(500, 10, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 500);
    }

    #[test]
    fn removing_a_cut_vertex_partitions() {
        // Barbell: two triangles joined through a single bridge node.
        let (mut g, ids) = Graph::with_nodes(7);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (4, 5),
            (5, 6),
            (6, 4),
            (2, 3),
            (3, 4),
        ] {
            g.add_edge(ids[a], ids[b]);
        }
        assert!(is_connected(&g));
        g.remove_node(ids[3]);
        assert_eq!(component_count(&g), 2);
    }

    #[test]
    fn csr_components_match_slab_components_with_tombstones() {
        let (mut g, ids) = Graph::with_nodes(10);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)] {
            g.add_edge(ids[a], ids[b]);
        }
        g.remove_node(ids[6]);
        g.remove_node(ids[9]);
        let csr = CsrSnapshot::build(&g);
        assert_eq!(connected_components_csr(&csr), connected_components(&g));
        let (count, largest) = (component_count(&g), largest_component_size(&g));
        let via_vectors = connected_components(&g);
        assert_eq!(count, via_vectors.len());
        assert_eq!(largest, via_vectors.first().map_or(0, Vec::len));
    }

    #[test]
    fn seed_scan_tie_breaks_like_materialized_components() {
        // Two equal-size components: the seed scan must report the seed
        // of the one connected_components orders first (smallest member
        // id), because diameter() derives its component from that seed.
        let (mut g, ids) = Graph::with_nodes(6);
        for (a, b) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            g.add_edge(ids[a], ids[b]);
        }
        let (count, largest, seed) = component_seed_scan(&g).unwrap();
        assert_eq!(count, 2);
        assert_eq!(largest, 3);
        assert_eq!(seed, ids[0]);
        assert_eq!(connected_components(&g)[0][0], seed);
        assert_eq!(component_seed_scan(&Graph::new()), None);
    }

    #[test]
    fn counting_scan_matches_materialized_components() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut g, ids) = random_regular(60, 3, &mut rng);
        for &victim in ids.iter().take(25) {
            g.remove_node(victim);
        }
        let comps = connected_components(&g);
        assert_eq!(component_count(&g), comps.len());
        assert_eq!(
            largest_component_size(&g),
            comps.first().map_or(0, Vec::len)
        );
    }
}
