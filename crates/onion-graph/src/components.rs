//! Connected-component analysis.
//!
//! The paper's Figures 5a/5b plot the number of connected components of DDSR
//! versus a normal graph as nodes are deleted, and Figure 6 measures how many
//! simultaneous deletions are needed before the graph partitions (~40% for
//! 10-regular graphs). These helpers provide the underlying measurements.

use crate::graph::{Graph, NodeId};

/// Returns the connected components as sorted lists of node ids (largest
/// component first, ties broken by smallest node id).
///
/// One flat-array BFS sweep over the slab: a `Vec<bool>` indexed by node id
/// tracks visitation and each component vector doubles as its own BFS
/// queue, so the whole pass is `O(n + m)` with no hashing.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; graph.id_bound()];
    let mut components = Vec::new();
    for node in graph.nodes() {
        if visited[node.0] {
            continue;
        }
        visited[node.0] = true;
        let mut component = vec![node];
        let mut head = 0usize;
        while head < component.len() {
            let u = component[head];
            head += 1;
            if let Some(neighbors) = graph.neighbors(u) {
                for &v in neighbors {
                    if !visited[v.0] {
                        visited[v.0] = true;
                        component.push(v);
                    }
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.first().cmp(&b.first()))
    });
    components
}

/// Number of connected components (`0` for an empty graph).
pub fn component_count(graph: &Graph) -> usize {
    connected_components(graph).len()
}

/// Size of the largest connected component (`0` for an empty graph).
pub fn largest_component_size(graph: &Graph) -> usize {
    connected_components(graph)
        .first()
        .map_or(0, std::vec::Vec::len)
}

/// Returns `true` if the graph has at most one connected component.
///
/// The empty graph is considered connected (there is nothing to partition),
/// matching how the partition-threshold experiment treats a fully deleted
/// botnet.
pub fn is_connected(graph: &Graph) -> bool {
    component_count(graph) <= 1
}

/// Fraction of live nodes contained in the largest component (`1.0` for the
/// empty graph by the same convention as [`is_connected`]).
pub fn largest_component_fraction(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 1.0;
    }
    largest_component_size(graph) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random_regular;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_graph_is_connected_with_zero_components() {
        let g = Graph::new();
        assert_eq!(component_count(&g), 0);
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 0);
        assert_eq!(largest_component_fraction(&g), 1.0);
    }

    #[test]
    fn isolated_nodes_each_form_a_component() {
        let (g, _) = Graph::with_nodes(4);
        assert_eq!(component_count(&g), 4);
        assert!(!is_connected(&g));
        assert_eq!(largest_component_size(&g), 1);
    }

    #[test]
    fn two_triangles_are_two_components() {
        let (mut g, ids) = Graph::with_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(ids[a], ids[b]);
        }
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
        assert!((largest_component_fraction(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn components_sorted_largest_first() {
        let (mut g, ids) = Graph::with_nodes(5);
        g.add_edge(ids[0], ids[1]);
        g.add_edge(ids[1], ids[2]);
        g.add_edge(ids[3], ids[4]);
        let comps = connected_components(&g);
        assert_eq!(comps[0], vec![ids[0], ids[1], ids[2]]);
        assert_eq!(comps[1], vec![ids[3], ids[4]]);
    }

    #[test]
    fn random_regular_graph_is_connected() {
        // A random 10-regular graph on 500 nodes is connected with
        // overwhelming probability.
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = random_regular(500, 10, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(largest_component_size(&g), 500);
    }

    #[test]
    fn removing_a_cut_vertex_partitions() {
        // Barbell: two triangles joined through a single bridge node.
        let (mut g, ids) = Graph::with_nodes(7);
        for (a, b) in [
            (0, 1),
            (1, 2),
            (2, 0),
            (4, 5),
            (5, 6),
            (6, 4),
            (2, 3),
            (3, 4),
        ] {
            g.add_edge(ids[a], ids[b]);
        }
        assert!(is_connected(&g));
        g.remove_node(ids[3]);
        assert_eq!(component_count(&g), 2);
    }
}
