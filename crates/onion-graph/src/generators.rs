//! Random graph generators used to build the initial OnionBot overlays.
//!
//! The paper's evaluation (§V-B) starts from *k-regular* graphs of 5000 and
//! 15000 nodes with k ∈ {5, 10, 15}; [`random_regular`] reproduces that
//! setup. A deterministic [`ring_lattice`] (circulant graph) and an
//! Erdős–Rényi generator are provided for tests and ablations.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Generates a random k-regular simple graph on `n` nodes using the
/// configuration (pairing) model with restarts.
///
/// # Panics
/// Panics if `n * k` is odd or `k >= n` (no simple k-regular graph exists).
pub fn random_regular<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> (Graph, Vec<NodeId>) {
    assert!(k < n, "degree must be smaller than the node count");
    assert!(
        (n * k).is_multiple_of(2),
        "n * k must be even for a k-regular graph"
    );
    'restart: loop {
        let (mut graph, ids) = Graph::with_nodes(n);
        // Stub list: each node appears k times.
        let mut stubs: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, k)).collect();
        stubs.shuffle(rng);
        // Repeatedly draw random stub pairs; on conflict re-shuffle the tail a
        // bounded number of times, otherwise restart from scratch.
        let mut attempts_without_progress = 0usize;
        while !stubs.is_empty() {
            if attempts_without_progress > 200 {
                continue 'restart;
            }
            let i = rng.gen_range(0..stubs.len());
            let j = rng.gen_range(0..stubs.len());
            if i == j {
                attempts_without_progress += 1;
                continue;
            }
            let (a, b) = (stubs[i], stubs[j]);
            if a == b || graph.has_edge(ids[a], ids[b]) {
                attempts_without_progress += 1;
                continue;
            }
            graph.add_edge(ids[a], ids[b]);
            attempts_without_progress = 0;
            // Remove the two consumed stubs (larger index first).
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
        }
        return (graph, ids);
    }
}

/// Generates a deterministic k-regular ring lattice (circulant graph): node
/// `i` is connected to the `k/2` nodes on each side.
///
/// # Panics
/// Panics if `k` is odd, `k >= n`, or `n == 0`.
pub fn ring_lattice(n: usize, k: usize) -> (Graph, Vec<NodeId>) {
    assert!(n > 0, "ring lattice needs at least one node");
    assert!(k.is_multiple_of(2), "ring lattice degree must be even");
    assert!(k < n, "degree must be smaller than the node count");
    let (mut graph, ids) = Graph::with_nodes(n);
    for i in 0..n {
        for offset in 1..=(k / 2) {
            let j = (i + offset) % n;
            graph.add_edge(ids[i], ids[j]);
        }
    }
    (graph, ids)
}

/// Generates an Erdős–Rényi graph G(n, p).
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> (Graph, Vec<NodeId>) {
    let (mut graph, ids) = Graph::with_nodes(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                graph.add_edge(ids[i], ids[j]);
            }
        }
    }
    (graph, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_regular_produces_exact_degrees() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, k) in [(50usize, 3usize), (100, 5), (200, 10), (61, 4)] {
            let (g, ids) = random_regular(n, k, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n * k / 2);
            for id in &ids {
                assert_eq!(g.degree(*id), Some(k), "n={n} k={k}");
            }
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn random_regular_is_seed_deterministic() {
        let (g1, _) = random_regular(80, 6, &mut StdRng::seed_from_u64(7));
        let (g2, _) = random_regular(80, 6, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_total_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        random_regular(5, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "smaller than the node count")]
    fn random_regular_rejects_excessive_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        random_regular(4, 4, &mut rng);
    }

    #[test]
    fn ring_lattice_structure() {
        let (g, ids) = ring_lattice(10, 4);
        for id in &ids {
            assert_eq!(g.degree(*id), Some(4));
        }
        assert!(g.has_edge(ids[0], ids[1]));
        assert!(g.has_edge(ids[0], ids[2]));
        assert!(!g.has_edge(ids[0], ids[3]));
        assert!(g.has_edge(ids[0], ids[9]));
        g.check_invariants().unwrap();
    }

    #[test]
    fn erdos_renyi_edge_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let (g, _) = erdos_renyi(100, 0.1, &mut rng);
        let possible = 100 * 99 / 2;
        let observed = g.edge_count() as f64 / possible as f64;
        assert!(
            (0.05..0.15).contains(&observed),
            "observed density {observed}"
        );
        let (empty, _) = erdos_renyi(50, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let (full, _) = erdos_renyi(20, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 20 * 19 / 2);
    }
}
