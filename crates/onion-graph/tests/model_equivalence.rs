//! Equivalence of the slab-backed `Graph` against a naive ordered-map
//! reference model, replaying randomized add-node / add-edge / remove-edge /
//! remove-node traces.
//!
//! The reference model is the "obviously correct" structure the slab
//! replaced: a `BTreeMap<NodeId, BTreeSet<NodeId>>`. After every operation
//! both structures must agree on node sets, adjacency, degrees, edge count
//! and the full sorted edge list, and every mutating call must return the
//! same answer.

use std::collections::{BTreeMap, BTreeSet};

use onion_graph::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The naive reference: ordered adjacency map with the same simple-graph
/// semantics (no self loops, no parallel edges, ids never reused).
#[derive(Default)]
struct ModelGraph {
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
    next_id: usize,
    edge_count: usize,
}

impl ModelGraph {
    fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.adjacency.insert(id, BTreeSet::new());
        id
    }

    fn contains(&self, node: NodeId) -> bool {
        self.adjacency.contains_key(&node)
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.contains(a) || !self.contains(b) {
            return false;
        }
        if !self.adjacency.get_mut(&a).unwrap().insert(b) {
            return false;
        }
        self.adjacency.get_mut(&b).unwrap().insert(a);
        self.edge_count += 1;
        true
    }

    fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = self.adjacency.get_mut(&a).is_some_and(|s| s.remove(&b));
        if removed {
            if let Some(s) = self.adjacency.get_mut(&b) {
                s.remove(&a);
            }
            self.edge_count -= 1;
        }
        removed
    }

    fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        let neighbors = self.adjacency.remove(&node)?;
        for n in &neighbors {
            if let Some(s) = self.adjacency.get_mut(n) {
                s.remove(&node);
            }
        }
        self.edge_count -= neighbors.len();
        Some(neighbors.into_iter().collect())
    }

    fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (&a, neighbors) in &self.adjacency {
            for &b in neighbors {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

fn assert_equivalent(graph: &Graph, model: &ModelGraph, step: usize) {
    assert_eq!(
        graph.node_count(),
        model.adjacency.len(),
        "node count diverged at step {step}"
    );
    assert_eq!(
        graph.edge_count(),
        model.edge_count,
        "edge count diverged at step {step}"
    );
    let model_nodes: Vec<NodeId> = model.adjacency.keys().copied().collect();
    assert_eq!(
        graph.nodes(),
        model_nodes,
        "node set diverged at step {step}"
    );
    for (&n, neighbors) in &model.adjacency {
        let expected: Vec<NodeId> = neighbors.iter().copied().collect();
        assert_eq!(
            graph.neighbors(n).unwrap(),
            &expected[..],
            "adjacency of {n} diverged at step {step}"
        );
        assert_eq!(graph.degree(n), Some(expected.len()));
    }
    assert_eq!(
        graph.edges(),
        model.edges(),
        "edge list diverged at step {step}"
    );
    graph.check_invariants().unwrap();
}

/// Replays one random trace with the given seed and mutation mix.
fn replay_trace(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = Graph::new();
    let mut model = ModelGraph::default();
    // `known` holds every id ever allocated (live or deleted) so the trace
    // also exercises operations on tombstones and out-of-range ids.
    let mut known: Vec<NodeId> = Vec::new();
    for _ in 0..6 {
        let a = graph.add_node();
        let b = model.add_node();
        assert_eq!(a, b, "id allocation must match the reference model");
        known.push(a);
    }
    for step in 0..steps {
        let pick = |rng: &mut StdRng, known: &[NodeId]| {
            // Occasionally aim past the allocated range.
            if rng.gen_bool(0.05) {
                NodeId(rng.gen_range(0..known.len() + 8))
            } else {
                known[rng.gen_range(0..known.len())]
            }
        };
        match rng.gen_range(0..10u32) {
            0 => {
                let a = graph.add_node();
                let b = model.add_node();
                assert_eq!(a, b, "step {step}: fresh ids diverged");
                known.push(a);
            }
            1..=4 => {
                let a = pick(&mut rng, &known);
                let b = pick(&mut rng, &known);
                assert_eq!(
                    graph.add_edge(a, b),
                    model.add_edge(a, b),
                    "step {step}: add_edge({a}, {b}) answers diverged"
                );
            }
            5..=6 => {
                let a = pick(&mut rng, &known);
                let b = pick(&mut rng, &known);
                assert_eq!(
                    graph.remove_edge(a, b),
                    model.remove_edge(a, b),
                    "step {step}: remove_edge({a}, {b}) answers diverged"
                );
            }
            _ => {
                let a = pick(&mut rng, &known);
                assert_eq!(
                    graph.remove_node(a),
                    model.remove_node(a),
                    "step {step}: remove_node({a}) answers diverged"
                );
            }
        }
        assert_equivalent(&graph, &model, step);
    }
}

#[test]
fn random_traces_match_the_reference_model() {
    for seed in 0..12u64 {
        replay_trace(seed, 400);
    }
}

#[test]
fn dense_small_world_trace_matches() {
    // A tiny id space forces heavy tombstone traffic and duplicate-edge
    // attempts, the cases where a slab implementation would drift.
    for seed in 100..106u64 {
        replay_trace(seed, 800);
    }
}
