//! Byte-identity of the sharded `scale` scenario across worker-thread
//! counts — the PR 8 tentpole contract.
//!
//! Sharded construction and partitioned wave repair fan out over worker
//! threads that *steal shards*; the fixed [`ShardGrid`] defines the
//! per-shard RNG streams, so the `--threads-per-item` budget (and the
//! `--jobs` fan-out around it) must never reach the bytes. These tests
//! pin exactly that: the same seeded `scale` run, serialized, at shard
//! worker counts 1, 2 and 8 and at different job counts, must be one
//! byte string.

use onionbots_bench::scenarios;
use sim::runner::ThreadsPerItem;
use sim::scenario_api::ScenarioParams;
use sim::Runner;

fn scale_params() -> ScenarioParams {
    ScenarioParams::with_seed(2015)
        .with_override("n", "4000")
        .with_override("waves", "4")
}

fn scale_only() -> Vec<std::sync::Arc<dyn sim::Scenario>> {
    scenarios::registry()
        .select(&["scale".to_string()])
        .unwrap()
}

#[test]
fn scale_summary_is_byte_identical_at_shard_worker_counts_1_2_8() {
    let run = |threads: usize| {
        Runner::new(scale_params())
            .threads_per_item(ThreadsPerItem::Fixed(threads))
            .run(&scale_only())
            .to_json()
    };
    let reference = run(1);
    for threads in [2usize, 8] {
        assert_eq!(
            run(threads),
            reference,
            "shard workers must steal work, not shape output (threads={threads})"
        );
    }
}

#[test]
fn scale_summary_does_not_depend_on_job_fan_out() {
    // Full quick sweep (two parts) so jobs > 1 actually runs parts
    // concurrently, each under its own thread budget.
    let params = ScenarioParams::with_seed(2015).with_override("waves", "3");
    let run = |jobs: usize, threads: ThreadsPerItem| {
        Runner::new(params.clone())
            .jobs(jobs)
            .threads_per_item(threads)
            .run(&scale_only())
            .to_json()
    };
    let reference = run(1, ThreadsPerItem::Sequential);
    assert_eq!(run(2, ThreadsPerItem::Fixed(4)), reference);
    assert_eq!(run(8, ThreadsPerItem::Auto), reference);
}

#[test]
fn coarser_shard_grids_change_the_stream_but_stay_deterministic() {
    let with_shards = |shards: &str| {
        Runner::new(scale_params().with_override("shards", shards))
            .run(&scale_only())
            .to_json()
    };
    // A different grid is a different logical experiment: the per-shard
    // streams differ, so the bytes may differ — but each grid replays.
    assert_eq!(with_shards("8"), with_shards("8"));
    assert_eq!(with_shards("64"), with_shards("64"));
}
