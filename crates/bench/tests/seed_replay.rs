//! Seed-replay regression tests pinning the determinism audit.
//!
//! The workspace invariant — one seed, one byte-identical result — is
//! what the content-addressed cache, the executor backends and the
//! daemon all assume. These tests pin the three layers the audit
//! touched (see detlint rule D001 and DESIGN.md "Determinism lint"):
//!
//! * the scenario pipeline end to end: two in-process [`Runner`] runs
//!   with the same seed must produce byte-identical summaries, serial
//!   or parallel;
//! * [`BotnetSimulation`], whose bot/address tables and the
//!   [`tor_sim::network::TorNetwork`] HSDir/announcement storage it
//!   drives are now ordered containers;
//! * [`WireObserver::summarize`], whose size-entropy fold sums floats
//!   over aggregated counts — the fold order must not depend on the
//!   order cells happened to arrive in.

use botnet::messages::CommandKind;
use botnet::observer::WireObserver;
use botnet::BotnetSimulation;
use onion_graph::budget::with_thread_budget;
use onion_graph::graph::NodeId;
use onionbots_bench::scenarios;
use onionbots_core::shard::ShardGrid;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::scenario_api::ScenarioParams;
use sim::Runner;

fn params(seed: u64) -> ScenarioParams {
    ScenarioParams::with_seed(seed)
        .with_override("steps", "2")
        .with_override("n", "500")
}

/// The scenarios whose code paths the ordering audit touched most:
/// fig7 drives `SoapAttack`, the SOAP ablation drives the defended
/// variant, and fig6 covers the partition sweep; all three flow through
/// the runner/executor bookkeeping that moved to ordered maps.
fn selected() -> Vec<std::sync::Arc<dyn sim::Scenario>> {
    scenarios::registry()
        .select(&[
            "fig6".to_string(),
            "fig7".to_string(),
            "ablation-soap-defenses".to_string(),
        ])
        .unwrap()
}

#[test]
fn runner_replays_byte_identically_for_a_fixed_seed() {
    let first = Runner::new(params(11)).jobs(4).run(&selected());
    let second = Runner::new(params(11)).jobs(4).run(&selected());
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "two runs with the same seed must be byte-identical"
    );
    let serial = Runner::new(params(11)).run(&selected());
    assert_eq!(
        serial.to_json(),
        first.to_json(),
        "worker count must not influence results"
    );
}

/// Drives a full botnet lifecycle — infection, rally, descriptor
/// publication, broadcast, address rotation, takedowns, re-broadcast —
/// and flattens everything observable into one string.
fn drive_botnet(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = BotnetSimulation::new(40, &mut rng);
    sim.infect(24, &mut rng);
    sim.rally(3, &mut rng);
    sim.publish_all_descriptors();
    let first = sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
    sim.advance_time(3600);
    sim.rotate_all(900);
    sim.publish_all_descriptors();
    for id in sim.bot_ids().into_iter().take(5) {
        assert!(sim.take_down(id));
    }
    let second = sim.broadcast_command(CommandKind::RotateAddresses { period: 900 }, 2, &mut rng);
    let (overlay, labels) = sim.overlay_snapshot();
    let addresses: Vec<_> = sim
        .bot_ids()
        .into_iter()
        .map(|id| (id, sim.address_of(id)))
        .collect();
    format!(
        "{first:?}|{second:?}|bots={:?}|addresses={addresses:?}|overlay={overlay:?}|labels={labels:?}|clock={}",
        sim.bot_ids(),
        sim.clock_secs()
    )
}

#[test]
fn botnet_simulation_replays_byte_identically_for_a_fixed_seed() {
    assert_eq!(
        drive_botnet(7),
        drive_botnet(7),
        "same seed must reproduce the entire observable lifecycle"
    );
    assert_ne!(
        drive_botnet(7),
        drive_botnet(8),
        "different seeds must actually exercise the RNG"
    );
}

/// Drives the PR 8 sharded overlay lifecycle — sharded k-regular
/// construction over a fixed grid, then two takedown waves through the
/// partitioned repair path — under a given worker-thread budget, and
/// flattens everything observable into one string.
fn drive_sharded_overlay(seed: u64, budget: usize) -> String {
    with_thread_budget(budget, || {
        let (n, k) = (3_000usize, 10usize);
        let grid = ShardGrid::new(n, k, 64);
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular_sharded(n, k, DdsrConfig::for_degree(k), &grid, &mut rng);
        let mut waves = Vec::new();
        for wave in 0..2 {
            let victims: Vec<NodeId> = ids.iter().copied().skip(wave * 150).take(150).collect();
            waves.push(overlay.remove_nodes_sharded(&victims, &grid, &mut rng));
        }
        format!(
            "waves={waves:?}|stats={:?}|graph={:?}",
            overlay.stats(),
            overlay.graph()
        )
    })
}

#[test]
fn sharded_overlay_replays_byte_identically_for_a_fixed_seed() {
    assert_eq!(
        drive_sharded_overlay(2015, 1),
        drive_sharded_overlay(2015, 1),
        "same seed must reproduce the sharded build and both waves"
    );
    assert_ne!(
        drive_sharded_overlay(2015, 1),
        drive_sharded_overlay(2016, 1),
        "different seeds must actually exercise the shard streams"
    );
}

#[test]
fn sharded_overlay_is_invariant_to_the_worker_thread_budget() {
    let reference = drive_sharded_overlay(2015, 1);
    for budget in [2usize, 4, 8] {
        assert_eq!(
            drive_sharded_overlay(2015, budget),
            reference,
            "shard workers must steal work, not shape output (budget={budget})"
        );
    }
}

#[test]
fn observer_summary_does_not_depend_on_observation_order() {
    let cells = [
        (512, 0),
        (514, 0),
        (512, 1),
        (600, 1),
        (514, 2),
        (512, 2),
        (700, 0),
        (512, 3),
    ];
    let mut forward = WireObserver::new();
    let mut reverse = WireObserver::new();
    for &(size, window) in &cells {
        forward.observe(size, window);
    }
    for &(size, window) in cells.iter().rev() {
        reverse.observe(size, window);
    }
    let a = serde_json::to_string(&forward.summarize()).unwrap();
    let b = serde_json::to_string(&reverse.summarize()).unwrap();
    // Byte equality of the serialized summaries pins the entropy fold:
    // float addition is not associative, so a hash-ordered fold could
    // make these drift in the last bits.
    assert_eq!(a, b, "summary must be a pure function of the multiset");
}
