//! Integration tests for the pluggable execution backends against real
//! registered scenarios: `RunSummary` byte-equality local-vs-process at
//! several worker counts, worker-kill recovery with identical output,
//! retry exhaustion for an item that keeps killing workers, and cache
//! sharing across backends (parts computed by worker subprocesses replay
//! as hits in a local run, byte-identically).
//!
//! The worker subprocess is this package's own `run_experiments` binary
//! in its hidden `worker` mode; Cargo points the tests at it via
//! `CARGO_BIN_EXE_run_experiments`.

use std::path::PathBuf;
use std::sync::Arc;

use onionbots_bench::scenarios;
use onionbots_bench::worker::CRASH_AFTER_ENV;
use sim::scenario_api::ScenarioParams;
use sim::{Backend, ResultCache, Runner, Scenario, ThreadsPerItem, WorkerCommand};

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_run_experiments")).arg("worker")
}

/// The ISSUE's target parameterization: fig6 plus scale pinned to one
/// 2000-node part, with sweeps shortened so debug-profile test runs stay
/// quick. Overrides are declared by both scenarios, so they flow through
/// work-item scoping.
fn params(seed: u64) -> ScenarioParams {
    ScenarioParams::with_seed(seed)
        .with_override("steps", "4")
        .with_override("n", "2000")
        .with_override("waves", "3")
}

fn selected() -> Vec<Arc<dyn Scenario>> {
    scenarios::registry()
        .select(&["fig6".to_string(), "scale".to_string()])
        .unwrap()
}

const PARTS: usize = 4 + 1; // fig6 steps=4 + scale collapsed to n=2000

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "onionbots-exec-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn process_backend_is_byte_identical_to_local_at_jobs_1_4_8() {
    let reference = Runner::new(params(2015)).run(&selected());
    for jobs in [1, 4, 8] {
        let local = Runner::new(params(2015)).jobs(jobs).run(&selected());
        assert_eq!(
            local.to_json(),
            reference.to_json(),
            "local backend, jobs={jobs}"
        );
        let process = Runner::new(params(2015))
            .jobs(jobs)
            .backend(Backend::Process(worker_command()))
            .run(&selected());
        assert_eq!(
            process.to_json(),
            reference.to_json(),
            "process backend, jobs={jobs}"
        );
    }
}

#[test]
fn threads_per_item_is_byte_invariant_across_backends_and_budgets() {
    // The ISSUE's target parameterization: the scale scenario pinned to
    // one 2000-node part (waves shortened for debug-profile runtime).
    // Intra-item parallelism is a pure throughput knob: any thread budget
    // on any backend must produce the reference bytes — on the process
    // backend this also exercises the ONIONBOTS_THREADS_PER_ITEM env
    // passthrough to worker subprocesses.
    let scale_only = || {
        scenarios::registry()
            .select(&["scale".to_string()])
            .unwrap()
    };
    let params = ScenarioParams::with_seed(2015)
        .with_override("n", "2000")
        .with_override("waves", "3");
    let reference = Runner::new(params.clone()).run(&scale_only());
    for threads in [1usize, 4] {
        for process in [false, true] {
            let mut runner = Runner::new(params.clone())
                .jobs(2)
                .threads_per_item(ThreadsPerItem::Fixed(threads));
            if process {
                runner = runner.backend(Backend::Process(worker_command()));
            }
            let summary = runner.run(&scale_only());
            assert_eq!(
                summary.to_json(),
                reference.to_json(),
                "threads-per-item={threads}, backend={}",
                if process { "process" } else { "local" }
            );
        }
    }
    // Auto resolves against this machine's core count; whatever it picks
    // must also be byte-identical.
    let auto = Runner::new(params)
        .jobs(2)
        .threads_per_item(ThreadsPerItem::Auto)
        .run(&scale_only());
    assert_eq!(auto.to_json(), reference.to_json(), "threads-per-item=auto");
}

#[test]
fn killed_workers_are_respawned_and_the_output_is_unchanged() {
    let reference = Runner::new(params(7)).run(&selected());
    // Every worker incarnation abruptly exits while holding its second
    // item (read, never answered), so the run survives a worker death for
    // nearly every part and still converges to the same bytes.
    let flaky = worker_command().env(CRASH_AFTER_ENV, "1");
    let summary = Runner::new(params(7))
        .jobs(2)
        .backend(Backend::Process(flaky))
        .run(&selected());
    assert_eq!(summary.to_json(), reference.to_json());
}

#[test]
fn an_item_that_keeps_killing_workers_fails_the_run_instead_of_looping() {
    // Crash-after-zero: every incarnation dies on its very first item, so
    // no item can ever complete and the retry bound must trip.
    let hopeless = worker_command().env(CRASH_AFTER_ENV, "0");
    let error = Runner::new(params(3))
        .jobs(2)
        .backend(Backend::Process(hopeless))
        .try_run_with_stats(&selected())
        .unwrap_err();
    let message = error.to_string();
    assert!(
        message.contains("worker") && message.contains("giving up"),
        "unexpected error: {message}"
    );
}

#[test]
fn parts_computed_by_workers_replay_as_local_cache_hits_byte_identically() {
    let dir = temp_dir("cross-backend-cache");
    let cache = ResultCache::open(&dir).unwrap();
    // Cold run on the process backend: every part misses, executes in a
    // worker subprocess, and is stored by the parent.
    let (cold, stats) = Runner::new(params(11))
        .jobs(4)
        .backend(Backend::Process(worker_command()))
        .with_cache(cache.clone())
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.misses, PARTS);
    assert_eq!(stats.stored, PARTS);
    assert_eq!(stats.hits, 0);
    // Warm run on the *local* backend against the same cache: identity is
    // the fingerprint, which knows nothing about backends.
    let (warm, stats) = Runner::new(params(11))
        .jobs(4)
        .with_cache(cache)
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert!(stats.all_hits(), "{stats:?}");
    assert_eq!(stats.hits, PARTS);
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
