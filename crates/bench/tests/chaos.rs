//! Chaos integration suite: the fig6+scale workload under seeded,
//! deterministic fault schedules on all three backends, driven through
//! the real `run_experiments` CLI in subprocesses.
//!
//! Every schedule pins one of exactly two acceptable outcomes — the run
//! absorbs the faults and its `summary.json` is **byte-identical** to
//! the fault-free reference, or it fails with a **clean typed error**
//! (non-zero exit, a recognizable message on stderr, no summary) — and
//! every run must finish within a watchdog: a hang is itself a failure.
//! Each backend's runs share one result cache, and after the schedules
//! a warm verification pass proves no faulted or failed run poisoned
//! it: run #1 replays byte-identically, run #2 is all hits.
//!
//! Crash-action schedules never target `local.item`: a crash failpoint
//! exits the *process* that hits it, which for the local backend is the
//! dispatcher itself — the worker/host points rehearse crashes instead.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Per-run watchdog: generous against a loaded CI core, tiny against
/// the 600 s a `hang` action would otherwise cost.
const WATCHDOG: Duration = Duration::from_secs(120);

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_run_experiments")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("onionbots-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The chaos workload: both registered multi-part scenarios, shortened
/// for debug-profile runtime, on a fixed seed.
fn workload_args() -> Vec<String> {
    [
        "--only",
        "fig6,scale",
        "--seed",
        "2015",
        "--set",
        "steps=4",
        "--set",
        "n=2000",
        "--set",
        "waves=3",
        "--jobs",
        "2",
        "--format",
        "json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

struct CliOutcome {
    success: bool,
    stderr: String,
}

/// Runs the CLI under the watchdog, capturing stderr. A run that
/// overshoots the watchdog is killed and fails the test: no fault
/// schedule is allowed to produce a hang.
fn run_cli(args: &[String], envs: &[(&str, &str)], what: &str) -> CliOutcome {
    let mut command = Command::new(bin());
    command
        .args(args)
        .env_remove("ONIONBOTS_CACHE_DIR")
        .env_remove("ONIONBOTS_FAULTS")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    for (key, value) in envs {
        command.env(key, value);
    }
    let mut child = command.spawn().unwrap();
    let mut stderr_pipe = child.stderr.take().unwrap();
    // Drain stderr from a thread so a chatty child can never block on a
    // full pipe while the watchdog thinks it hung.
    let drain = std::thread::spawn(move || {
        let mut buffer = String::new();
        let _ = stderr_pipe.read_to_string(&mut buffer);
        buffer
    });
    let deadline = Instant::now() + WATCHDOG;
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            let stderr = drain.join().unwrap();
            panic!("{what}: run hung past the {WATCHDOG:?} watchdog\nstderr:\n{stderr}");
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    CliOutcome {
        success: status.success(),
        stderr: drain.join().unwrap(),
    }
}

/// A `serve-worker` host subprocess (optionally rigged with a fault
/// schedule through its environment), killed and reaped on drop.
struct WorkerHost {
    child: Child,
    addr: String,
}

impl WorkerHost {
    fn spawn(fault_schedule: Option<&str>) -> WorkerHost {
        let mut command = Command::new(bin());
        command
            .args(["serve-worker", "--listen", "127.0.0.1:0"])
            .env_remove("ONIONBOTS_FAULTS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(schedule) = fault_schedule {
            command.env("ONIONBOTS_FAULTS", schedule);
        }
        let mut child = command.spawn().unwrap();
        let stdout = child.stdout.take().unwrap();
        let mut addr = String::new();
        BufReader::new(stdout).read_line(&mut addr).unwrap();
        let addr = addr.trim().to_string();
        assert!(!addr.is_empty(), "serve-worker printed no bound address");
        WorkerHost { child, addr }
    }
}

impl Drop for WorkerHost {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What one seeded schedule must produce.
enum Expect {
    /// The faults are absorbed; `summary.json` matches the reference.
    Identical,
    /// The run fails cleanly: non-zero exit, this substring on stderr,
    /// and no summary written.
    CleanError(&'static str),
}

struct Schedule {
    name: &'static str,
    /// `--faults` entries armed in the dispatcher process (exported to
    /// process-backend workers automatically).
    faults: &'static [&'static str],
    /// Fault schedule armed on the second remote host only.
    host_faults: Option<&'static str>,
    /// Extra CLI flags (e.g. a tightened remote deadline).
    extra: &'static [&'static str],
    /// Re-execute cached parts (`--refresh`) so the faults actually
    /// fire instead of being swallowed by warm hits from the previous
    /// schedule. Off only for schedules that target the lookup path
    /// itself — those *need* the warm hits to exercise `cache.load`.
    refresh: bool,
    expect: Expect,
}

const fn schedule(name: &'static str, faults: &'static [&'static str], expect: Expect) -> Schedule {
    Schedule {
        name,
        faults,
        host_faults: None,
        extra: &[],
        refresh: true,
        expect,
    }
}

/// Computes the fault-free reference `summary.json` once per suite run.
fn reference_summary(dir: &Path) -> Vec<u8> {
    let out = dir.join("reference");
    let mut args = workload_args();
    args.extend([
        "--no-cache".into(),
        "--out".into(),
        out.display().to_string(),
    ]);
    let outcome = run_cli(&args, &[], "reference run");
    assert!(outcome.success, "reference run failed:\n{}", outcome.stderr);
    std::fs::read(out.join("summary.json")).unwrap()
}

/// Drives `schedules` on one backend: every run under the watchdog, a
/// shared cache across the whole sequence, byte-identity or clean error
/// per schedule, then the two-pass warm verification.
fn run_backend_suite(
    tag: &str,
    backend_args: &dyn Fn(&Path, usize) -> Vec<String>,
    schedules: &[Schedule],
) {
    let dir = scratch(tag);
    let reference = reference_summary(&dir);
    let cache = dir.join("cache");
    for (index, schedule) in schedules.iter().enumerate() {
        let out = dir.join(format!("run-{}", schedule.name));
        let mut args = workload_args();
        args.extend(backend_args(&dir, index));
        args.extend([
            "--cache-dir".into(),
            cache.display().to_string(),
            "--out".into(),
            out.display().to_string(),
        ]);
        for entry in schedule.faults {
            args.extend(["--faults".into(), (*entry).into()]);
        }
        if schedule.refresh {
            args.push("--refresh".into());
        }
        args.extend(schedule.extra.iter().map(|s| s.to_string()));
        // Remote schedules get a fleet of one clean and one (optionally
        // rigged) host; the hosts live exactly as long as the run.
        let hosts: Vec<WorkerHost> = if tag == "remote" {
            vec![
                WorkerHost::spawn(None),
                WorkerHost::spawn(schedule.host_faults),
            ]
        } else {
            assert!(
                schedule.host_faults.is_none(),
                "{}: host faults need the remote backend",
                schedule.name
            );
            Vec::new()
        };
        for host in &hosts {
            args.extend(["--worker".into(), host.addr.clone()]);
        }
        let what = format!("{tag}/{}", schedule.name);
        let outcome = run_cli(&args, &[], &what);
        match &schedule.expect {
            Expect::Identical => {
                assert!(
                    outcome.success,
                    "{what}: expected the faults to be absorbed, run failed:\n{}",
                    outcome.stderr
                );
                let summary = std::fs::read(out.join("summary.json")).unwrap();
                assert_eq!(
                    summary, reference,
                    "{what}: summary.json diverged from the fault-free reference"
                );
            }
            Expect::CleanError(needle) => {
                assert!(
                    !outcome.success,
                    "{what}: expected a clean failure, run succeeded"
                );
                assert!(
                    outcome.stderr.contains(needle),
                    "{what}: stderr lacks '{needle}':\n{}",
                    outcome.stderr
                );
                assert!(
                    !out.join("summary.json").exists(),
                    "{what}: a failed run wrote a summary"
                );
            }
        }
    }
    // Warm verification against the cache every schedule shared. Pass 1
    // replays byte-identically (quarantining any entry a torn write left
    // behind); pass 2 must be pure hits — if a faulted or failed run
    // had poisoned the cache, the bytes or the stats would betray it.
    for (pass, expect_all_hits) in [(1, false), (2, true)] {
        let out = dir.join(format!("verify-{pass}"));
        let mut args = workload_args();
        args.extend([
            "--cache-dir".into(),
            cache.display().to_string(),
            "--out".into(),
            out.display().to_string(),
        ]);
        let what = format!("{tag}/verify-{pass}");
        let outcome = run_cli(&args, &[], &what);
        assert!(outcome.success, "{what} failed:\n{}", outcome.stderr);
        let summary = std::fs::read(out.join("summary.json")).unwrap();
        assert_eq!(summary, reference, "{what}: warm replay diverged");
        if expect_all_hits {
            assert!(
                outcome.stderr.contains("0 miss(es), 0 invalidated"),
                "{what}: expected a pure-hit replay, stderr:\n{}",
                outcome.stderr
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn local_backend_absorbs_or_cleanly_fails_every_seeded_schedule() {
    run_backend_suite(
        "local",
        &|_, _| vec!["--backend".into(), "local".into()],
        &[
            schedule(
                "delay-two-items",
                &["local.item=delay:50@1,3"],
                Expect::Identical,
            ),
            schedule(
                "inject-item-error",
                &["local.item=err@2"],
                Expect::CleanError("injected fault"),
            ),
            Schedule {
                name: "cache-load-errors",
                faults: &["cache.load=err@1.."],
                host_faults: None,
                extra: &[],
                refresh: false,
                expect: Expect::Identical,
            },
            schedule(
                "delay-every-item",
                &["local.item=delay:20@1.."],
                Expect::Identical,
            ),
            // Last on purpose: the torn entry it leaves behind must be
            // quarantined by the verify pass, not papered over by a
            // later refresh run.
            schedule(
                "torn-cache-store",
                &["cache.store=partial@2"],
                Expect::Identical,
            ),
        ],
    );
}

#[test]
fn process_backend_absorbs_or_cleanly_fails_every_seeded_schedule() {
    run_backend_suite(
        "process",
        &|_, _| vec!["--backend".into(), "process".into()],
        &[
            schedule(
                "worker-crash-after-one",
                &["worker.item=crash@2"],
                Expect::Identical,
            ),
            schedule(
                "toxic-first-item",
                &["worker.item=err@1"],
                Expect::CleanError("giving up"),
            ),
            schedule(
                "worker-delay",
                &["worker.item=delay:100@3"],
                Expect::Identical,
            ),
            schedule("store-error", &["cache.store=err@1"], Expect::Identical),
            schedule(
                "worker-crash-loop",
                &["worker.item=crash@1"],
                Expect::CleanError("giving up"),
            ),
        ],
    );
}

#[test]
fn remote_backend_absorbs_or_cleanly_fails_every_seeded_schedule() {
    run_backend_suite(
        "remote",
        &|_, _| vec!["--backend".into(), "remote".into()],
        &[
            Schedule {
                name: "host-crash",
                faults: &[],
                host_faults: Some("remote.host.item=crash@2"),
                extra: &[],
                refresh: true,
                expect: Expect::Identical,
            },
            schedule(
                "dispatcher-read-error",
                &["remote.read=err@2"],
                Expect::Identical,
            ),
            schedule(
                "dispatcher-connect-error",
                &["remote.connect=err@1"],
                Expect::CleanError("cannot connect"),
            ),
            Schedule {
                name: "hung-host",
                faults: &[],
                host_faults: Some("remote.host.item=hang@2"),
                extra: &["--remote-deadline-ms", "2000"],
                refresh: true,
                expect: Expect::Identical,
            },
            schedule(
                "read-delays",
                &["remote.read=delay:150@1.."],
                Expect::Identical,
            ),
        ],
    );
}
