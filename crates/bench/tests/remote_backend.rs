//! Integration tests for the remote (multi-host TCP) backend against
//! real registered scenarios and real `serve-worker` host processes:
//! `RunSummary` byte-equality remote-vs-local at several fleet sizes
//! (cold and warm), host-kill recovery with identical output, retry
//! exhaustion against a host that keeps corrupting the stream, fatal
//! rejection by a host that refuses the handshake, and cache sharing
//! (parts computed by remote hosts replay as local hits, byte-identically
//! — and a failed remote run never poisons the cache).
//!
//! Worker hosts are this package's own `run_experiments` binary in its
//! `serve-worker` mode, bound to `127.0.0.1:0`; each host prints its
//! bound address as its first stdout line, which is how the tests learn
//! the ephemeral ports.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use onionbots_bench::scenarios;
use onionbots_bench::worker::CRASH_AFTER_ENV;
use sim::remote::{DispatchFrame, WorkerFrame, REMOTE_PROTOCOL_VERSION};
use sim::scenario_api::ScenarioParams;
use sim::{Backend, ResultCache, Runner, Scenario, ThreadsPerItem};

/// A `serve-worker` host subprocess; killed (and reaped) on drop so a
/// failing test never leaks listeners.
struct WorkerHost {
    child: Child,
    addr: String,
}

impl WorkerHost {
    /// Spawns a host on an ephemeral loopback port and reads the bound
    /// address off its first stdout line.
    fn spawn(crash_after: Option<usize>) -> WorkerHost {
        let mut command = Command::new(env!("CARGO_BIN_EXE_run_experiments"));
        command
            .args(["serve-worker", "--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(n) = crash_after {
            command.env(CRASH_AFTER_ENV, n.to_string());
        }
        let mut child = command.spawn().expect("spawn serve-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut addr = String::new();
        BufReader::new(stdout)
            .read_line(&mut addr)
            .expect("read bound address");
        let addr = addr.trim().to_string();
        assert!(!addr.is_empty(), "serve-worker printed no bound address");
        WorkerHost { child, addr }
    }
}

impl Drop for WorkerHost {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn fleet(hosts: &[WorkerHost]) -> Vec<String> {
    hosts.iter().map(|host| host.addr.clone()).collect()
}

/// The executor-backend suite's parameterization: fig6 plus scale pinned
/// to one 2000-node part, sweeps shortened for debug-profile runtime.
fn params(seed: u64) -> ScenarioParams {
    ScenarioParams::with_seed(seed)
        .with_override("steps", "4")
        .with_override("n", "2000")
        .with_override("waves", "3")
}

fn selected() -> Vec<Arc<dyn Scenario>> {
    scenarios::registry()
        .select(&["fig6".to_string(), "scale".to_string()])
        .unwrap()
}

const PARTS: usize = 4 + 1; // fig6 steps=4 + scale collapsed to n=2000

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "onionbots-remote-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn remote_backend_is_byte_identical_to_local_at_1_2_4_hosts() {
    let reference = Runner::new(params(2015)).run(&selected());
    for host_count in [1usize, 2, 4] {
        let hosts: Vec<WorkerHost> = (0..host_count).map(|_| WorkerHost::spawn(None)).collect();
        let summary = Runner::new(params(2015))
            .jobs(host_count)
            .backend(Backend::Remote(fleet(&hosts)))
            .run(&selected());
        assert_eq!(
            summary.to_json(),
            reference.to_json(),
            "remote backend, {host_count} host(s)"
        );
    }
}

#[test]
fn remote_hosts_honor_threads_per_item_byte_identically() {
    let hosts = [WorkerHost::spawn(None), WorkerHost::spawn(None)];
    let reference = Runner::new(params(2015)).run(&selected());
    for threads in [1usize, 4] {
        let summary = Runner::new(params(2015))
            .jobs(2)
            .threads_per_item(ThreadsPerItem::Fixed(threads))
            .backend(Backend::Remote(fleet(&hosts)))
            .run(&selected());
        assert_eq!(
            summary.to_json(),
            reference.to_json(),
            "remote backend, threads-per-item={threads}"
        );
    }
}

#[test]
fn a_host_killed_mid_run_requeues_its_items_and_the_output_is_unchanged() {
    let reference = Runner::new(params(7)).run(&selected());
    // The second host abruptly exits while holding its second assignment
    // (read, never answered); its items must re-queue on the survivor and
    // the run must still converge to the reference bytes.
    let hosts = [WorkerHost::spawn(None), WorkerHost::spawn(Some(1))];
    let summary = Runner::new(params(7))
        .jobs(2)
        .backend(Backend::Remote(fleet(&hosts)))
        .run(&selected());
    assert_eq!(summary.to_json(), reference.to_json());
}

/// A *hung* in-test "host": completes the handshake, then reads
/// assignments forever without ever answering one. Unlike a killed host
/// the connection stays open, so only the per-item deadline can unstick
/// the dispatcher thread that fed it.
fn spawn_hung_host() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                continue;
            }
            let welcome = serde_json::to_string(&WorkerFrame::Welcome {
                protocol: REMOTE_PROTOCOL_VERSION,
            })
            .unwrap();
            if writeln!(writer, "{welcome}").is_err() {
                continue;
            }
            // Swallow every assignment without replying until the
            // dispatcher gives up and closes the connection.
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
            }
        }
    });
    addr
}

#[test]
fn a_hung_host_is_abandoned_after_the_deadline_and_its_items_requeue() {
    let reference = Runner::new(params(9)).run(&selected());
    // One healthy host, one that accepts work and never answers. The
    // per-item deadline must cut the hung channel loose and re-queue its
    // in-flight item on the survivor — same bytes, no stall, no retry
    // charge against the item.
    let real = WorkerHost::spawn(None);
    let hung = spawn_hung_host();
    let summary = Runner::new(params(9))
        .jobs(2)
        .remote_deadline_ms(1_500)
        .backend(Backend::Remote(vec![real.addr.clone(), hung]))
        .run(&selected());
    assert_eq!(summary.to_json(), reference.to_json());
}

/// An adversarial in-test "host": completes the handshake, then answers
/// every assignment with a corrupt line, on every connection, forever.
/// Unlike a killed host it stays reachable, so the dispatcher's
/// reconnect-and-retry path runs until the per-item retry bound trips.
fn spawn_garbage_host() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                continue;
            }
            let welcome = serde_json::to_string(&WorkerFrame::Welcome {
                protocol: REMOTE_PROTOCOL_VERSION,
            })
            .unwrap();
            if writeln!(writer, "{welcome}").is_err() {
                continue;
            }
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if writeln!(writer, "this is not a worker frame").is_err() {
                    break;
                }
            }
        }
    });
    (addr, handle)
}

#[test]
fn an_item_that_keeps_corrupting_the_stream_fails_the_run_instead_of_looping() {
    let (addr, _handle) = spawn_garbage_host();
    let error = Runner::new(params(3))
        .jobs(1)
        .backend(Backend::Remote(vec![addr]))
        .try_run_with_stats(&selected())
        .unwrap_err();
    let message = error.to_string();
    assert!(
        message.contains("worker") && message.contains("giving up"),
        "unexpected error: {message}"
    );
}

#[test]
fn a_host_that_rejects_the_handshake_fails_the_run_and_never_poisons_the_cache() {
    // A "host" from the future: it refuses the dispatcher's hello.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let _handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            // Sanity: the dispatcher leads with a versioned hello.
            let hello: DispatchFrame = serde_json::from_str(line.trim()).unwrap();
            assert!(matches!(hello, DispatchFrame::Hello { .. }));
            let reject = serde_json::to_string(&WorkerFrame::Reject {
                reason: "speaks remote protocol v999".to_string(),
            })
            .unwrap();
            let _ = writeln!(writer, "{reject}");
        }
    });
    let dir = temp_dir("reject-no-poison");
    let cache = ResultCache::open(&dir).unwrap();
    let error = Runner::new(params(5))
        .jobs(1)
        .backend(Backend::Remote(vec![addr]))
        .with_cache(cache.clone())
        .try_run_with_stats(&selected())
        .unwrap_err();
    let message = error.to_string();
    assert!(message.contains("refused"), "unexpected error: {message}");
    // Nothing from the failed run may have been cached: a local run over
    // the same cache starts fully cold.
    let (_, stats) = Runner::new(params(5))
        .with_cache(cache)
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.hits, 0, "failed remote run poisoned the cache");
    assert_eq!(stats.misses, PARTS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parts_computed_by_remote_hosts_replay_as_local_cache_hits_byte_identically() {
    let dir = temp_dir("remote-cache");
    let cache = ResultCache::open(&dir).unwrap();
    let hosts = [WorkerHost::spawn(None), WorkerHost::spawn(None)];
    // Cold run on the remote backend: every part misses, executes on a
    // worker host, and is stored by the dispatcher.
    let (cold, stats) = Runner::new(params(11))
        .jobs(2)
        .backend(Backend::Remote(fleet(&hosts)))
        .with_cache(cache.clone())
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.misses, PARTS);
    assert_eq!(stats.stored, PARTS);
    assert_eq!(stats.hits, 0);
    drop(hosts); // the fleet is gone; the cache outlives it
    let (warm, stats) = Runner::new(params(11))
        .jobs(4)
        .with_cache(cache)
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert!(stats.all_hits(), "{stats:?}");
    assert_eq!(stats.hits, PARTS);
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_remote_submission_is_byte_identical_to_its_cold_run() {
    let dir = temp_dir("remote-warm");
    let cache = ResultCache::open(&dir).unwrap();
    let hosts = [WorkerHost::spawn(None)];
    let run = |cache: ResultCache| {
        Runner::new(params(13))
            .jobs(1)
            .backend(Backend::Remote(fleet(&hosts)))
            .with_cache(cache)
            .run_with_stats(&selected())
    };
    let (cold, cold_stats) = run(cache.clone());
    assert_eq!(cold_stats.unwrap().misses, PARTS);
    let (warm, warm_stats) = run(cache);
    assert!(warm_stats.unwrap().all_hits());
    assert_eq!(warm.to_json(), cold.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
