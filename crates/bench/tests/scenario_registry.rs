//! Integration tests for the scenario registry and the parallel runner:
//! registration invariants, `--only`-style selection errors, and the
//! determinism guarantee that `--jobs 1` and `--jobs 8` produce identical
//! `RunSummary` JSON.

use onionbots_bench::scenarios;
use sim::scenario_api::ScenarioParams;
use sim::Runner;

/// Every seed scenario is registered exactly once under its expected id.
#[test]
fn registry_lists_every_seed_scenario_exactly_once() {
    let registry = scenarios::registry();
    let ids = registry.ids();
    assert!(ids.len() >= 9, "expected at least 9 scenarios, got {ids:?}");
    let mut sorted: Vec<&str> = ids.clone();
    sorted.sort_unstable();
    let mut dedup = sorted.clone();
    dedup.dedup();
    assert_eq!(sorted, dedup, "duplicate scenario ids in {ids:?}");
    for expected in [
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "ablation-non",
        "ablation-soap-defenses",
    ] {
        assert!(ids.contains(&expected), "missing scenario '{expected}'");
    }
}

/// Selection resolves ids in the requested order and rejects unknown ids
/// with an error that names the known scenarios.
#[test]
fn selection_resolves_ids_and_rejects_unknown_ones() {
    let registry = scenarios::registry();
    let picked = registry
        .select(&["fig6".to_string(), "table1".to_string()])
        .expect("known ids resolve");
    let picked_ids: Vec<&str> = picked.iter().map(|s| s.id()).collect();
    assert_eq!(picked_ids, ["fig6", "table1"]);

    let Err(error) = registry.select(&["fig6".to_string(), "fig99".to_string()]) else {
        panic!("unknown id must be rejected");
    };
    assert_eq!(error.requested, "fig99");
    let message = error.to_string();
    assert!(message.contains("unknown scenario 'fig99'"), "{message}");
    assert!(message.contains("fig4"), "error names known ids: {message}");
}

/// The determinism guarantee behind `--jobs`: the same seed produces the
/// same `RunSummary` JSON no matter how many workers run the parts. The
/// subset includes fig6 (15 parts) so cross-part merge order is exercised.
#[test]
fn run_summary_json_is_identical_for_any_worker_count() {
    let registry = scenarios::registry();
    let selected = registry
        .select(&["fig6".to_string(), "fig8".to_string(), "table1".to_string()])
        .unwrap();
    let params = ScenarioParams::with_seed(77);
    let sequential = Runner::new(params.clone()).run(&selected);
    let parallel = Runner::new(params).jobs(8).run(&selected);
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "jobs=1 and jobs=8 summaries must serialize identically"
    );
    assert_eq!(sequential.outcomes.len(), 3);
    assert_eq!(sequential.outcomes[0].parts, 15);
}

/// The sequential trait entry point (`Scenario::run`, used by the thin
/// figure binaries) produces exactly the reports the parallel runner
/// collects for that scenario.
#[test]
fn sequential_run_matches_runner_output() {
    let registry = scenarios::registry();
    let scenario = registry.get("fig6").unwrap();
    let params = ScenarioParams::with_seed(5);
    let direct = scenario.run(&params);
    let summary = Runner::new(params).jobs(4).run(&[scenario]);
    assert_eq!(summary.outcomes[0].reports, direct);
}

/// Different seeds actually change stochastic scenario results.
#[test]
fn seeds_flow_into_scenario_results() {
    let registry = scenarios::registry();
    let selected = registry.select(&["fig6".to_string()]).unwrap();
    let a = Runner::new(ScenarioParams::with_seed(1)).run(&selected);
    let b = Runner::new(ScenarioParams::with_seed(2)).run(&selected);
    assert_ne!(a.outcomes[0].reports, b.outcomes[0].reports);
}
