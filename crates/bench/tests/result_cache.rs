//! Integration tests for the content-addressed result cache against real
//! registered scenarios: cold/warm byte-equality at any worker count,
//! fingerprint invalidation on seed/scale/override changes, `--refresh`
//! semantics and graceful degradation when the cache location is unusable.

use std::path::PathBuf;

use onionbots_bench::scenarios;
use sim::scenario_api::ScenarioParams;
use sim::{ResultCache, Runner};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "onionbots-cache-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small-but-real parameterization: fig6 limited to a 3-size sweep plus
/// the SOAP ablation, both of which consume declared overrides.
fn params(seed: u64) -> ScenarioParams {
    ScenarioParams::with_seed(seed)
        .with_override("steps", "3")
        .with_override("n", "500")
}

fn selected() -> Vec<std::sync::Arc<dyn sim::Scenario>> {
    scenarios::registry()
        .select(&["fig6".to_string(), "ablation-soap-defenses".to_string()])
        .unwrap()
}

const PARTS: usize = 3 + 5; // fig6 steps=3 + five defense configurations

#[test]
fn warm_runs_are_all_hits_and_byte_identical_at_any_jobs_value() {
    let dir = temp_dir("warm");
    let cache = ResultCache::open(&dir).unwrap();
    let uncached = Runner::new(params(42)).run(&selected());
    let (cold, stats) = Runner::new(params(42))
        .jobs(8)
        .with_cache(cache.clone())
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.misses, PARTS);
    assert_eq!(stats.stored, PARTS);
    assert_eq!(
        cold.to_json(),
        uncached.to_json(),
        "cold cached run must match the plain run byte-for-byte"
    );
    for jobs in [1, 8] {
        let (warm, stats) = Runner::new(params(42))
            .jobs(jobs)
            .with_cache(cache.clone())
            .run_with_stats(&selected());
        let stats = stats.unwrap();
        assert!(
            stats.all_hits(),
            "jobs={jobs}: warm run must execute zero parts ({stats:?})"
        );
        assert_eq!(stats.hits, PARTS);
        assert_eq!(warm.to_json(), cold.to_json(), "jobs={jobs}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_scale_and_override_changes_invalidate_exactly_the_affected_parts() {
    let dir = temp_dir("fingerprint");
    let cache = ResultCache::open(&dir).unwrap();
    let runner = |p: ScenarioParams| Runner::new(p).jobs(4).with_cache(cache.clone());
    runner(params(1)).run(&selected());

    // Different seed: every part derives a new part seed -> all miss.
    let (_, stats) = runner(params(2)).run_with_stats(&selected());
    assert_eq!(stats.unwrap().hits, 0);

    // Different scale: all miss.
    let mut full = params(1);
    full.full_scale = true;
    let (_, stats) = runner(full).run_with_stats(&selected());
    assert_eq!(stats.unwrap().hits, 0);

    // fig6 consumes `steps`; the ablation declares only `n`/`k`, so its
    // five parts stay warm — invalidation is scoped to the affected parts.
    let (_, stats) = runner(params(1).with_override("steps", "2")).run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.hits, 5, "the SOAP ablation must stay cached");
    assert_eq!(stats.misses, 2, "only the changed fig6 sweep re-executes");

    // Symmetrically, changing `n` re-executes only the ablation.
    let (_, stats) = runner(params(1).with_override("n", "700")).run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.hits, 3, "fig6 must stay cached");
    assert_eq!(stats.misses, 5, "only the ablation re-executes");

    // The original parameterization is still fully warm.
    let (_, stats) = runner(params(1)).run_with_stats(&selected());
    assert!(stats.unwrap().all_hits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refresh_reexecutes_everything_but_changes_nothing() {
    let dir = temp_dir("refresh");
    let cache = ResultCache::open(&dir).unwrap();
    let baseline = Runner::new(params(3))
        .with_cache(cache.clone())
        .run(&selected());
    let (refreshed, stats) = Runner::new(params(3))
        .jobs(4)
        .with_cache(cache.clone())
        .refresh(true)
        .run_with_stats(&selected());
    let stats = stats.unwrap();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.invalidated, PARTS);
    assert_eq!(stats.stored, PARTS);
    assert_eq!(refreshed.to_json(), baseline.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_location_is_detected_at_open_time() {
    let file = temp_dir("blocked");
    std::fs::write(&file, b"a file, not a directory").unwrap();
    assert!(
        ResultCache::open(&file).is_err(),
        "open must fail so the CLI can fall back to an uncached run"
    );
    let _ = std::fs::remove_file(&file);
}
