//! End-to-end tests for the simulation service daemon: a real
//! `run_experiments serve` subprocess on a Unix domain socket, driven by
//! real client connections speaking the NDJSON job API.
//!
//! Covered: cold and warm submissions are byte-identical to the one-shot
//! runner (with per-job cache stats flipping from all-misses to
//! all-hits), two concurrent clients agree byte-for-byte, malformed
//! frames are rejected without killing the daemon, and SIGTERM drains an
//! in-flight job to completion — even while `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS`
//! keeps killing its workers mid-drain — before the daemon exits 0.

#![cfg(unix)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use onionbots_bench::scenarios;
use onionbots_bench::worker::CRASH_AFTER_ENV;
use sim::scenario_api::ScenarioParams;
use sim::service::{Event, Request};
use sim::{CacheStats, JobSpec, RunSummary, Runner};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_run_experiments")
}

/// A `run_experiments serve` subprocess bound to a fresh socket in a
/// fresh scratch directory, killed and cleaned up on drop.
struct Daemon {
    child: Child,
    socket: PathBuf,
    dir: PathBuf,
}

impl Daemon {
    fn spawn(tag: &str, cached: bool, extra_args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let dir =
            std::env::temp_dir().join(format!("onionbots-service-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("service.sock");
        let mut command = Command::new(bin());
        command.arg("serve").arg("--socket").arg(&socket);
        if cached {
            command.arg("--cache-dir").arg(dir.join("cache"));
        }
        command
            .args(extra_args)
            // The ambient environment must not smuggle a cache into
            // tests that want an uncached daemon.
            .env_remove("ONIONBOTS_CACHE_DIR")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (key, value) in envs {
            command.env(key, value);
        }
        let mut child = command.spawn().unwrap();
        let deadline = Instant::now() + Duration::from_secs(120);
        while !socket.exists() {
            if let Some(status) = child.try_wait().unwrap() {
                panic!("daemon exited before binding its socket: {status}");
            }
            assert!(
                Instant::now() < deadline,
                "daemon never bound {}",
                socket.display()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, socket, dir }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).unwrap()
    }

    fn wait_for_exit(&mut self) -> i32 {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status.code().expect("daemon exited without a code");
            }
            assert!(Instant::now() < deadline, "daemon did not drain and exit");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn send_frame(writer: &mut impl Write, request: &Request) {
    let frame = serde_json::to_string(request).unwrap();
    writeln!(writer, "{frame}").unwrap();
    writer.flush().unwrap();
}

fn read_event(reader: &mut impl BufRead) -> Event {
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line).unwrap();
        assert!(read > 0, "daemon closed the connection unexpectedly");
        if line.trim().is_empty() {
            continue;
        }
        return serde_json::from_str(line.trim()).unwrap();
    }
}

/// Submits `spec` on `stream` and drives the connection to the final
/// frame; panics if the job errors out.
fn submit(stream: UnixStream, spec: &JobSpec) -> (RunSummary, Option<CacheStats>, Vec<Event>) {
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    send_frame(&mut writer, &Request::Submit(spec.clone()));
    let mut seen = Vec::new();
    loop {
        match read_event(&mut reader) {
            Event::Done { summary, cache, .. } => return (summary, cache, seen),
            Event::Error { job, message } => panic!("job {job:?} failed: {message}"),
            other => seen.push(other),
        }
    }
}

/// The test job: fig6 shortened to a debug-profile-friendly sweep.
fn fig6_spec(seed: u64) -> JobSpec {
    let mut overrides = BTreeMap::new();
    overrides.insert("steps".to_string(), "4".to_string());
    JobSpec {
        only: Some(vec!["fig6".to_string()]),
        seed: Some(seed),
        overrides: Some(overrides),
        ..JobSpec::default()
    }
}

/// What the one-shot runner produces for [`fig6_spec`] — the byte-level
/// reference every daemon submission must reproduce.
fn fig6_reference(seed: u64) -> RunSummary {
    let params = ScenarioParams::with_seed(seed).with_override("steps", "4");
    let selected = scenarios::registry().select(&["fig6".to_string()]).unwrap();
    Runner::new(params).run(&selected)
}

#[test]
fn cold_then_warm_submissions_match_the_one_shot_bytes() {
    let daemon = Daemon::spawn("coldwarm", true, &[], &[]);
    let reference = fig6_reference(2015).to_json();

    let (cold, cold_stats, events) = submit(daemon.connect(), &fig6_spec(2015));
    assert_eq!(cold.to_json(), reference, "cold submission diverged");
    let cold_stats = cold_stats.expect("cached daemon reports stats");
    assert_eq!(cold_stats.hits, 0, "{cold_stats:?}");
    assert!(cold_stats.misses > 0, "{cold_stats:?}");
    assert_eq!(cold_stats.stored, cold_stats.misses, "{cold_stats:?}");
    // The stream saw the job get accepted and every part progress.
    assert!(matches!(events.first(), Some(Event::Accepted { .. })));
    assert!(
        events.iter().any(|e| matches!(e, Event::Part { .. })),
        "no part lifecycle frames streamed"
    );

    let (warm, warm_stats, _) = submit(daemon.connect(), &fig6_spec(2015));
    assert_eq!(warm.to_json(), reference, "warm submission diverged");
    let warm_stats = warm_stats.expect("cached daemon reports stats");
    assert!(warm_stats.all_hits(), "{warm_stats:?}");
    assert_eq!(warm_stats.hits, cold_stats.misses, "{warm_stats:?}");
}

#[test]
fn two_concurrent_clients_share_the_cache_and_agree_byte_for_byte() {
    let daemon = Daemon::spawn("concurrent", true, &[], &[]);
    let reference = fig6_reference(77).to_json();
    let spec = fig6_spec(77);
    let (first, second) = std::thread::scope(|scope| {
        let a = scope.spawn(|| submit(daemon.connect(), &spec));
        let b = scope.spawn(|| submit(daemon.connect(), &spec));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(first.0.to_json(), reference, "client A diverged");
    assert_eq!(second.0.to_json(), reference, "client B diverged");
    // Both clients were served with stats; between them every part was
    // either computed once or replayed, never recomputed redundantly
    // into divergent bytes.
    assert!(first.1.is_some() && second.1.is_some());
}

#[test]
fn malformed_frames_are_rejected_without_killing_the_daemon() {
    let daemon = Daemon::spawn("malformed", false, &[], &[]);

    // An abrupt no-data disconnect must be shrugged off.
    drop(daemon.connect());

    let stream = daemon.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // Garbage that is not JSON at all.
    writeln!(writer, "this is not a frame").unwrap();
    writer.flush().unwrap();
    match read_event(&mut reader) {
        Event::Error { job: None, message } => {
            assert!(message.contains("malformed"), "{message}")
        }
        other => panic!("expected a malformed-frame error, got {other:?}"),
    }
    // Well-formed JSON that fails validation: an unknown scenario.
    let bogus = JobSpec {
        only: Some(vec!["no-such-figure".to_string()]),
        ..JobSpec::default()
    };
    send_frame(&mut writer, &Request::Submit(bogus));
    match read_event(&mut reader) {
        Event::Error { job: None, message } => {
            assert!(message.contains("no-such-figure"), "{message}")
        }
        other => panic!("expected an unknown-scenario error, got {other:?}"),
    }
    // The same connection still answers real requests afterwards...
    send_frame(&mut writer, &Request::List);
    match read_event(&mut reader) {
        Event::Scenarios(infos) => {
            assert!(infos.iter().any(|info| info.id == "fig6"), "{infos:?}")
        }
        other => panic!("expected the scenario listing, got {other:?}"),
    }
    // ... and no job was ever created by the rejected submissions.
    send_frame(&mut writer, &Request::Status { job: None });
    match read_event(&mut reader) {
        Event::Jobs(jobs) => assert!(jobs.is_empty(), "{jobs:?}"),
        other => panic!("expected the job table, got {other:?}"),
    }
}

#[test]
fn sigterm_drains_an_inflight_job_despite_crashing_workers_then_exits_zero() {
    // Process backend with crash injection inherited by every worker:
    // each worker dies after completing one item, so finishing the drain
    // requires the executor to keep re-queueing and re-spawning while the
    // daemon is shutting down.
    let mut daemon = Daemon::spawn(
        "drain",
        false,
        &["--backend", "process", "--jobs", "2"],
        &[(CRASH_AFTER_ENV, "1")],
    );
    let reference = fig6_reference(7).to_json();

    let stream = daemon.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    send_frame(&mut writer, &Request::Submit(fig6_spec(7)));
    // Wait until the job is in flight, then pull the trigger.
    match read_event(&mut reader) {
        Event::Accepted { .. } => {}
        other => panic!("expected acceptance, got {other:?}"),
    }
    let killed = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.child.id().to_string())
        .status()
        .unwrap();
    assert!(killed.success());
    // The in-flight job must still stream to completion with the
    // reference bytes — dying workers and all.
    let summary = loop {
        match read_event(&mut reader) {
            Event::Done { summary, .. } => break summary,
            Event::Error { job, message } => panic!("job {job:?} failed during drain: {message}"),
            _ => {}
        }
    };
    assert_eq!(summary.to_json(), reference, "drained job diverged");
    drop(writer);
    drop(reader);
    // Drained daemons exit 0; anything else is a crash.
    assert_eq!(daemon.wait_for_exit(), 0);
    // And the socket is gone: no half-dead endpoint is left behind.
    assert!(!daemon.socket.exists(), "socket file survived the shutdown");
}

#[test]
fn a_full_daemon_rejects_submissions_instead_of_queueing() {
    // One job slot, and a `service.job` delay failpoint that holds the
    // first accepted job in Running long enough to probe the admission
    // bound without a timing race.
    let daemon = Daemon::spawn(
        "admission",
        false,
        &["--max-jobs", "1"],
        &[("ONIONBOTS_FAULTS", "service.job=delay:3000@1")],
    );
    let a = daemon.connect();
    let mut a_writer = a.try_clone().unwrap();
    let mut a_reader = BufReader::new(a);
    send_frame(&mut a_writer, &Request::Submit(fig6_spec(21)));
    match read_event(&mut a_reader) {
        Event::Accepted { .. } => {}
        other => panic!("expected acceptance, got {other:?}"),
    }
    // The second submission bounces with Rejected — nothing queues, the
    // connection survives, and no job row is created for it.
    let b = daemon.connect();
    let mut b_writer = b.try_clone().unwrap();
    let mut b_reader = BufReader::new(b);
    send_frame(&mut b_writer, &Request::Submit(fig6_spec(22)));
    match read_event(&mut b_reader) {
        Event::Rejected { reason } => assert!(reason.contains("full"), "{reason}"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    send_frame(&mut b_writer, &Request::Status { job: None });
    match read_event(&mut b_reader) {
        Event::Jobs(jobs) => assert_eq!(jobs.len(), 1, "a rejected job left a row: {jobs:?}"),
        other => panic!("expected the job table, got {other:?}"),
    }
    // The occupying job still completes with the reference bytes...
    let summary = loop {
        match read_event(&mut a_reader) {
            Event::Done { summary, .. } => break summary,
            Event::Error { job, message } => panic!("job {job:?} failed: {message}"),
            _ => {}
        }
    };
    assert_eq!(summary.to_json(), fig6_reference(21).to_json());
    // ... which frees the slot: the bounced client's retry is admitted.
    let (retry, _, _) = submit(daemon.connect(), &fig6_spec(22));
    assert_eq!(retry.to_json(), fig6_reference(22).to_json());
}

#[test]
fn cancel_over_the_wire_drains_the_job_and_never_warms_the_cache() {
    // The delay failpoint holds job 1 mid-run so the cancel provably
    // lands while the job is Running, before any item executed.
    let daemon = Daemon::spawn(
        "cancel",
        true,
        &[],
        &[("ONIONBOTS_FAULTS", "service.job=delay:3000@1")],
    );
    let a = daemon.connect();
    let mut a_writer = a.try_clone().unwrap();
    let mut a_reader = BufReader::new(a);
    send_frame(&mut a_writer, &Request::Submit(fig6_spec(31)));
    let job = match read_event(&mut a_reader) {
        Event::Accepted { job } => job,
        other => panic!("expected acceptance, got {other:?}"),
    };
    // A second connection cancels the running job and gets an ack.
    let b = daemon.connect();
    let mut b_writer = b.try_clone().unwrap();
    let mut b_reader = BufReader::new(b);
    send_frame(&mut b_writer, &Request::Cancel { job });
    match read_event(&mut b_reader) {
        Event::Cancelled { job: acked } => assert_eq!(acked, job),
        other => panic!("expected a cancel acknowledgement, got {other:?}"),
    }
    // The submitter's stream ends with Cancelled, never Done.
    loop {
        match read_event(&mut a_reader) {
            Event::Cancelled { job: cancelled } => {
                assert_eq!(cancelled, job);
                break;
            }
            Event::Done { .. } => panic!("cancelled job ran to completion"),
            Event::Error { job, message } => panic!("job {job:?} failed: {message}"),
            _ => {}
        }
    }
    // Cancelling an already-cancelled job is a clean per-request error.
    send_frame(&mut b_writer, &Request::Cancel { job });
    match read_event(&mut b_reader) {
        Event::Error { message, .. } => assert!(message.contains("not running"), "{message}"),
        other => panic!("expected a not-running error, got {other:?}"),
    }
    // Nothing from the cancelled job reached the shared cache: a rerun
    // of the same spec starts fully cold, then matches the reference.
    let (rerun, stats, _) = submit(daemon.connect(), &fig6_spec(31));
    assert_eq!(rerun.to_json(), fig6_reference(31).to_json());
    let stats = stats.expect("cached daemon reports stats");
    assert_eq!(stats.hits, 0, "cancelled job warmed the cache: {stats:?}");
    assert!(stats.misses > 0, "{stats:?}");
}

#[test]
fn a_client_that_vanishes_mid_frame_never_stops_the_job_or_the_daemon() {
    // The `service.sink` partial failpoint tears the submitter's second
    // event frame in half and breaks the sink — the daemon-side image of
    // a client that vanished mid-frame. The client really does hang up
    // its write half too, so the handler sees EOF after the job.
    let daemon = Daemon::spawn(
        "sinkdrop",
        true,
        &[],
        &[("ONIONBOTS_FAULTS", "service.sink=partial@2")],
    );
    let stream = daemon.connect();
    let mut writer = stream.try_clone().unwrap();
    send_frame(&mut writer, &Request::Submit(fig6_spec(41)));
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Drain whatever arrives until the daemon closes the connection: the
    // accepted frame, then the torn half-frame, then EOF once the job
    // has finished server-side. The job must NOT be cancelled by the
    // broken sink.
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).unwrap();
    assert!(raw.contains("Accepted"), "no acceptance frame: {raw:?}");
    assert!(
        !raw.contains("Done"),
        "the torn sink delivered a final frame anyway: {raw:?}"
    );
    // The daemon is alive and the orphaned job completed and warmed the
    // shared cache: the same spec replays as all hits, byte-identically.
    let (warm, stats, _) = submit(daemon.connect(), &fig6_spec(41));
    assert_eq!(warm.to_json(), fig6_reference(41).to_json());
    let stats = stats.expect("cached daemon reports stats");
    assert!(stats.all_hits(), "orphaned job did not warm: {stats:?}");
}

#[test]
fn shutdown_request_via_the_protocol_also_drains_and_exits_zero() {
    let mut daemon = Daemon::spawn("protostop", false, &[], &[]);
    let stream = daemon.connect();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    send_frame(&mut writer, &Request::Shutdown);
    match read_event(&mut reader) {
        Event::ShuttingDown => {}
        other => panic!("expected a shutdown acknowledgement, got {other:?}"),
    }
    assert_eq!(daemon.wait_for_exit(), 0);
}
