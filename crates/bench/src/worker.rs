//! The hidden `run_experiments worker` mode: the subprocess side of the
//! [`sim::ProcessExecutor`] backend.
//!
//! A worker is a plain filter: it reads one [`sim::WorkItem`] JSON line
//! at a time from stdin, looks the scenario up by id in the same
//! [`registry`](crate::scenarios::registry) the parent uses, executes
//! the part with its precomputed seed, and writes one [`sim::PartResult`]
//! JSON line to stdout. Per-item failures (an unknown scenario id) are
//! reported *in* the result line — the parent aggregates status and
//! prints every summary; a worker writes nothing to stdout but result
//! lines and nothing user-facing to stderr.
//!
//! EOF on stdin is the shutdown signal: the parent closes the pipe and
//! the worker exits cleanly. Crash-recovery tests inject deterministic
//! deaths through [`CRASH_AFTER_ENV`].
//!
//! The `run_experiments serve-worker --listen ADDR` mode
//! ([`serve_worker_main`]) is the same loop promoted to a standalone
//! **worker host** for `--backend remote`: registry loaded once, one
//! thread per dispatcher connection, the identical work-item frames over
//! TCP behind a one-line version handshake (see [`sim::remote`]).

use std::io;
use std::net::TcpListener;
use std::process::ExitCode;

use sim::executor::serve_work_items;
use sim::remote::serve_remote_host;

use crate::scenarios;

/// Environment variable for deterministic crash injection: a worker with
/// `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS=N` exits abruptly (status 101,
/// without responding) when it reads item `N + 1`, i.e. after fully
/// processing `N` items. The in-flight item is lost and must be
/// re-queued by the parent — exactly the failure mode a real worker
/// death produces. Respawned workers inherit the variable, so every
/// incarnation survives `N` items; any `N >= 1` still converges.
///
/// This legacy hook is now sugar over the general failpoint layer
/// ([`sim::faults`]): it translates to `worker.item=crash@{N+1}` (and
/// `remote.host.item=crash@{N+1}` for worker hosts). Richer schedules —
/// delays, injected I/O errors, open-ended ranges — arm directly via
/// [`sim::FAULTS_ENV`].
pub const CRASH_AFTER_ENV: &str = "ONIONBOTS_WORKER_CRASH_AFTER_ITEMS";

/// Arms this process's failpoint plan from the environment: first the
/// general [`sim::FAULTS_ENV`] schedule, then the legacy
/// [`CRASH_AFTER_ENV`] hook translated onto the `worker.item` /
/// `remote.host.item` crash points (the failpoint fires *before* an item
/// is answered, so hit `N + 1` crashes with exactly `N` items completed
/// — the documented legacy semantics).
fn arm_worker_faults() {
    if let Err(error) = sim::faults::arm_from_env() {
        // A bad schedule disables injection rather than killing a worker
        // that real work was dispatched to.
        eprintln!(
            "warning: ignoring invalid {} schedule: {error}",
            sim::FAULTS_ENV
        );
    }
    // detlint: allow(D003) reason="test-only crash-injection hook; read once at worker startup and never visible in results (a crashed worker's items re-queue elsewhere)"
    let crash_after = std::env::var(CRASH_AFTER_ENV)
        .ok()
        .and_then(|raw| raw.parse::<u64>().ok());
    if let Some(items) = crash_after {
        for point in [
            sim::faults::points::WORKER_ITEM,
            sim::faults::points::REMOTE_HOST_ITEM,
        ] {
            sim::faults::arm(&format!("{point}=crash@{}", items + 1))
                .expect("the translated legacy schedule always parses");
        }
    }
}

/// Runs the worker loop over stdin/stdout until EOF.
///
/// # Errors
/// Returns the underlying I/O error when a pipe breaks or the parent
/// sends a malformed work item (a protocol violation, not a recoverable
/// condition).
pub fn run_worker() -> io::Result<()> {
    let registry = scenarios::registry();
    arm_worker_faults();
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_work_items(stdin.lock(), stdout.lock(), |id| registry.get(id))
}

/// Usage text for the `serve-worker` subcommand.
pub const SERVE_WORKER_USAGE: &str = "\
Usage: run_experiments serve-worker --listen ADDR

Runs a standalone worker host for `--backend remote`: loads the scenario
registry once, accepts dispatcher connections on ADDR and serves
newline-delimited JSON work-item frames until the process is killed.

ADDR is a TCP socket address like 127.0.0.1:7461; port 0 picks a free
port. The actually bound address is printed as the first line on stdout
so scripts can use `--listen 127.0.0.1:0` and read the port back.

Options:
  --listen ADDR   TCP socket address to accept dispatchers on (required)
  --help          show this help
";

/// Entry point for `run_experiments serve-worker` (args exclude the
/// subcommand word). Runs until killed.
pub fn serve_worker_main(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        match arg.as_str() {
            "--listen" => match args.get(i) {
                Some(value) => {
                    listen = Some(value.clone());
                    i += 1;
                }
                None => {
                    eprintln!("error: --listen requires a value\n\n{SERVE_WORKER_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{SERVE_WORKER_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option '{other}'\n\n{SERVE_WORKER_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = listen else {
        eprintln!("error: serve-worker requires --listen ADDR\n\n{SERVE_WORKER_USAGE}");
        return ExitCode::from(2);
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("error: cannot listen on {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match listener.local_addr() {
        Ok(bound) => bound,
        Err(error) => {
            eprintln!("error: cannot resolve the bound address: {error}");
            return ExitCode::FAILURE;
        }
    };
    // The first stdout line is machine-readable: scripts bind port 0 and
    // read the real address back. (Rust's stdout is line-buffered, so
    // this lands before the accept loop blocks.)
    println!("{bound}");
    let registry = scenarios::registry();
    arm_worker_faults();
    eprintln!(
        "worker host: serving {} scenario(s) on {bound}",
        registry.len()
    );
    match serve_remote_host(listener, |id| registry.get(id)) {
        // The accept loop never returns Ok; a worker host runs until
        // killed.
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("worker host error: {error}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use sim::executor::{run_work_item, serve_work_items, PartResult, WorkItem};
    use sim::scenario_api::ScenarioParams;

    use crate::scenarios;

    /// Drives the worker loop against the real registry through in-memory
    /// pipes, mirroring what `run_worker` wires to stdin/stdout.
    fn serve(lines: &str) -> Vec<PartResult> {
        let registry = scenarios::registry();
        let mut output = Vec::new();
        serve_work_items(lines.as_bytes(), &mut output, |id| registry.get(id)).unwrap();
        std::str::from_utf8(&output)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn worker_resolves_registry_scenarios_by_id_and_matches_in_process_runs() {
        let registry = scenarios::registry();
        let fig6 = registry.get("fig6").unwrap();
        let params = ScenarioParams::with_seed(7)
            .with_override("steps", "2")
            .with_override("step-nodes", "500");
        let items: Vec<WorkItem> = (0..2)
            .map(|part| WorkItem::new(&*fig6, part, &params))
            .collect();
        let input: String = items
            .iter()
            .map(|item| serde_json::to_string(item).unwrap() + "\n")
            .collect();
        let results = serve(&input);
        assert_eq!(results.len(), 2);
        for (item, result) in items.iter().zip(&results) {
            assert_eq!(result.error, None);
            assert_eq!(result.fingerprint, item.fingerprint);
            assert_eq!(
                result.reports,
                run_work_item(&*fig6, item),
                "worker output must equal in-process execution"
            );
        }
    }

    #[test]
    fn worker_reports_unknown_scenarios_per_item_instead_of_dying() {
        let registry = scenarios::registry();
        let fig6 = registry.get("fig6").unwrap();
        let params = ScenarioParams::with_seed(1).with_override("steps", "1");
        let mut stranger = WorkItem::new(&*fig6, 0, &params);
        stranger.scenario_id = "not-a-scenario".to_string();
        let input = serde_json::to_string(&stranger).unwrap() + "\n";
        let results = serve(&input);
        assert_eq!(results.len(), 1);
        let error = results[0].error.as_deref().unwrap();
        assert!(error.contains("not-a-scenario"), "{error}");
        assert!(results[0].reports.is_empty());
    }
}
