//! The hidden `run_experiments worker` mode: the subprocess side of the
//! [`sim::ProcessExecutor`] backend.
//!
//! A worker is a plain filter: it reads one [`sim::WorkItem`] JSON line
//! at a time from stdin, looks the scenario up by id in the same
//! [`registry`](crate::scenarios::registry) the parent uses, executes
//! the part with its precomputed seed, and writes one [`sim::PartResult`]
//! JSON line to stdout. Per-item failures (an unknown scenario id) are
//! reported *in* the result line — the parent aggregates status and
//! prints every summary; a worker writes nothing to stdout but result
//! lines and nothing user-facing to stderr.
//!
//! EOF on stdin is the shutdown signal: the parent closes the pipe and
//! the worker exits cleanly. Crash-recovery tests inject deterministic
//! deaths through [`CRASH_AFTER_ENV`].

use std::io;

use sim::executor::serve_work_items;

use crate::scenarios;

/// Environment variable for deterministic crash injection: a worker with
/// `ONIONBOTS_WORKER_CRASH_AFTER_ITEMS=N` exits abruptly (status 101,
/// without responding) when it reads item `N + 1`, i.e. after fully
/// processing `N` items. The in-flight item is lost and must be
/// re-queued by the parent — exactly the failure mode a real worker
/// death produces. Respawned workers inherit the variable, so every
/// incarnation survives `N` items; any `N >= 1` still converges.
pub const CRASH_AFTER_ENV: &str = "ONIONBOTS_WORKER_CRASH_AFTER_ITEMS";

/// Runs the worker loop over stdin/stdout until EOF.
///
/// # Errors
/// Returns the underlying I/O error when a pipe breaks or the parent
/// sends a malformed work item (a protocol violation, not a recoverable
/// condition).
pub fn run_worker() -> io::Result<()> {
    let registry = scenarios::registry();
    // detlint: allow(D003) reason="test-only crash-injection hook; read once at worker startup and never visible in results (a crashed worker's items re-queue elsewhere)"
    let crash_after = std::env::var(CRASH_AFTER_ENV)
        .ok()
        .and_then(|raw| raw.parse::<usize>().ok());
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_work_items(stdin.lock(), stdout.lock(), crash_after, |id| {
        registry.get(id)
    })
}

#[cfg(test)]
mod tests {
    use sim::executor::{run_work_item, serve_work_items, PartResult, WorkItem};
    use sim::scenario_api::ScenarioParams;

    use crate::scenarios;

    /// Drives the worker loop against the real registry through in-memory
    /// pipes, mirroring what `run_worker` wires to stdin/stdout.
    fn serve(lines: &str) -> Vec<PartResult> {
        let registry = scenarios::registry();
        let mut output = Vec::new();
        serve_work_items(lines.as_bytes(), &mut output, None, |id| registry.get(id)).unwrap();
        std::str::from_utf8(&output)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn worker_resolves_registry_scenarios_by_id_and_matches_in_process_runs() {
        let registry = scenarios::registry();
        let fig6 = registry.get("fig6").unwrap();
        let params = ScenarioParams::with_seed(7)
            .with_override("steps", "2")
            .with_override("step-nodes", "500");
        let items: Vec<WorkItem> = (0..2)
            .map(|part| WorkItem::new(&*fig6, part, &params))
            .collect();
        let input: String = items
            .iter()
            .map(|item| serde_json::to_string(item).unwrap() + "\n")
            .collect();
        let results = serve(&input);
        assert_eq!(results.len(), 2);
        for (item, result) in items.iter().zip(&results) {
            assert_eq!(result.error, None);
            assert_eq!(result.fingerprint, item.fingerprint);
            assert_eq!(
                result.reports,
                run_work_item(&*fig6, item),
                "worker output must equal in-process execution"
            );
        }
    }

    #[test]
    fn worker_reports_unknown_scenarios_per_item_instead_of_dying() {
        let registry = scenarios::registry();
        let fig6 = registry.get("fig6").unwrap();
        let params = ScenarioParams::with_seed(1).with_override("steps", "1");
        let mut stranger = WorkItem::new(&*fig6, 0, &params);
        stranger.scenario_id = "not-a-scenario".to_string();
        let input = serde_json::to_string(&stranger).unwrap() + "\n";
        let results = serve(&input);
        assert_eq!(results.len(), 1);
        let error = results[0].error.as_deref().unwrap();
        assert!(error.contains("not-a-scenario"), "{error}");
        assert!(results[0].reports.is_empty());
    }
}
