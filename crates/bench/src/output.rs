//! Shared summary rendering for the CLI front ends.
//!
//! The one-shot `run_experiments` path and the `submit` client render a
//! [`RunSummary`] through this single function, so a summary that came
//! back from the simulation service daemon produces byte-identical
//! stdout, per-report files and `summary.json` to a local run — the
//! rendering layer cannot drift between the two paths.

use std::io::Write as _;

use sim::experiment::{CsvDirSink, JsonDirSink, ReportSink, TableSink};
use sim::RunSummary;

/// How reports are rendered to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable tables (the default).
    #[default]
    Table,
    /// CSV blocks, one per report.
    Csv,
    /// One JSON document per report.
    Json,
}

impl Format {
    /// Parses a `--format` value.
    ///
    /// # Errors
    /// Returns a message naming the accepted spellings.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "table" => Ok(Format::Table),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown --format '{other}' (table|csv|json)")),
        }
    }
}

/// Renders a summary to stdout in `format` and, with `out` set, writes
/// per-report `.json`/`.csv` files plus `summary.json` under that
/// directory — exactly what the one-shot CLI has always produced.
///
/// # Errors
/// Returns a human-readable message when the output directory or a file
/// cannot be written.
pub fn render_summary(
    summary: &RunSummary,
    format: Format,
    out: Option<&str>,
) -> Result<(), String> {
    let mut sinks: Vec<Box<dyn ReportSink>> = Vec::new();
    if format == Format::Table {
        sinks.push(Box::new(TableSink::new(std::io::stdout())));
    }
    if let Some(dir) = out {
        match (JsonDirSink::new(dir), CsvDirSink::new(dir)) {
            (Ok(json), Ok(csv)) => {
                sinks.push(Box::new(json));
                sinks.push(Box::new(csv));
            }
            (Err(error), _) | (_, Err(error)) => {
                return Err(format!("cannot create output directory {dir}: {error}"));
            }
        }
    }
    let mut stdout = std::io::stdout();
    for outcome in &summary.outcomes {
        for report in &outcome.reports {
            match format {
                Format::Csv => {
                    let _ = writeln!(stdout, "# {}\n{}", report.id, report.to_csv());
                }
                Format::Json => {
                    let _ = writeln!(stdout, "{}", report.to_json());
                }
                Format::Table => {}
            }
            for sink in &mut sinks {
                sink.write_report(&outcome.scenario_id, report)
                    .map_err(|error| format!("writing report {}: {error}", report.id))?;
            }
        }
    }
    for sink in &mut sinks {
        sink.finish()
            .map_err(|error| format!("flushing output: {error}"))?;
    }
    if let Some(dir) = out {
        let path = std::path::Path::new(dir).join("summary.json");
        std::fs::write(&path, summary.to_json())
            .map_err(|error| format!("writing {}: {error}", path.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parses_known_spellings_and_rejects_typos() {
        assert_eq!(Format::parse("table").unwrap(), Format::Table);
        assert_eq!(Format::parse("csv").unwrap(), Format::Csv);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert!(Format::parse("yaml").is_err());
        assert_eq!(Format::default(), Format::Table);
    }

    #[test]
    fn render_writes_summary_json_and_per_report_files() {
        use sim::scenario_api::{Scenario, ScenarioParams};
        use sim::Runner;
        use std::sync::Arc;

        struct Tiny;
        impl Scenario for Tiny {
            fn id(&self) -> &str {
                "tiny"
            }
            fn title(&self) -> &str {
                "tiny"
            }
            fn run_part(
                &self,
                _part: usize,
                _params: &ScenarioParams,
                _rng: &mut rand::rngs::StdRng,
            ) -> Vec<sim::ExperimentReport> {
                let mut r = sim::ExperimentReport::new("tiny", "tiny", "x", "y");
                r.push_series(sim::Series::new("s", vec![0.0], vec![1.0]));
                vec![r]
            }
        }

        let scenarios: Vec<Arc<dyn Scenario>> = vec![Arc::new(Tiny)];
        let summary = Runner::new(ScenarioParams::with_seed(1)).run(&scenarios);
        let dir = std::env::temp_dir().join(format!(
            "bench-output-render-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        render_summary(&summary, Format::Json, Some(dir.to_str().unwrap())).unwrap();
        let written = std::fs::read_to_string(dir.join("summary.json")).unwrap();
        assert_eq!(written, summary.to_json());
        assert!(dir.join("tiny/tiny.json").exists());
        assert!(dir.join("tiny/tiny.csv").exists());
        // An unusable directory degrades to an error message, not a panic.
        let blocked = dir.join("summary.json"); // a file, not a directory
        let error =
            render_summary(&summary, Format::Table, Some(blocked.to_str().unwrap())).unwrap_err();
        assert!(error.contains("cannot create output directory"), "{error}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
