//! The registered paper scenarios.
//!
//! Each submodule ports one former stand-alone binary into a
//! [`Scenario`](sim::scenario_api::Scenario): Figures 3–8, Table I and the
//! two ablations. [`registry`] returns them all; the legacy figure
//! binaries call [`run_legacy`] and the `run_experiments` binary drives
//! the registry through the parallel [`sim::Runner`].

pub mod ablation_non;
pub mod ablation_soap;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod scale;
pub mod table1;

use sim::scenario_api::{ScenarioParams, ScenarioRegistry};

use crate::Scale;

/// Builds the registry holding every paper scenario, in paper order.
pub fn registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry
        .register(fig3::RepairTrace)
        .register(fig4::CentralityUnderTakedown)
        .register(fig5::DdsrVersusNormal)
        .register(fig6::PartitionThreshold)
        .register(fig7::SoapCampaign)
        .register(fig8::SuperOnionRecovery)
        .register(table1::CryptoCatalog)
        .register(ablation_non::NonLookahead)
        .register(ablation_soap::SoapDefenses)
        .register(scale::ScaleChurn);
    registry
}

/// Entry point for the thin legacy figure binaries: parses the scale from
/// the binary's own arguments (plus the `ONIONBOTS_FULL` environment
/// fallback), runs the named scenario sequentially and prints each report
/// as a table.
///
/// # Panics
/// Panics if `id` is not registered — the legacy binaries only name
/// registry ids.
pub fn run_legacy(id: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = match Scale::from_args(&args) {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let params = ScenarioParams {
        full_scale: scale.is_full(),
        ..ScenarioParams::default()
    };
    let scenario = registry()
        .get(id)
        .unwrap_or_else(|| panic!("scenario '{id}' is not registered"));
    println!("# {} ({})\n", scenario.title(), scenario.id());
    for report in scenario.run(&params) {
        println!("{}", report.to_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_scenario_exactly_once() {
        let registry = registry();
        let ids = registry.ids();
        let expected = [
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table1",
            "ablation-non",
            "ablation-soap-defenses",
            "scale",
        ];
        assert_eq!(ids, expected);
        let mut dedup: Vec<&str> = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids are unique");
        assert!(registry.len() >= 10);
    }

    #[test]
    fn every_scenario_reports_at_least_one_part() {
        let params = ScenarioParams::default();
        for scenario in registry().iter() {
            assert!(
                scenario.parts(&params) >= 1,
                "{} has no parts",
                scenario.id()
            );
            assert!(!scenario.title().is_empty());
        }
    }
}
