//! Figure 6: number of simultaneous node deletions needed to partition a
//! 10-regular graph, for sizes n = 1000 .. 15000. The paper reports the
//! threshold tracks roughly 40% of the nodes (the `f(x) = 0.4x` reference
//! line).

use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario::partition_threshold;
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

const STEPS: usize = 15;

/// The Figure 6 scenario; one part per graph size, merged point-wise.
pub struct PartitionThreshold;

impl Scenario for PartitionThreshold {
    fn id(&self) -> &str {
        "fig6"
    }

    fn title(&self) -> &str {
        "Figure 6 — simultaneous deletions needed to partition a 10-regular graph"
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        STEPS
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let paper_n = (part + 1) * 1000;
        let n = Scale::from_params(params).population(paper_n);
        let threshold = partition_threshold(n, 10, (n / 100).max(1), rng);

        let mut report = ExperimentReport::new(
            "fig6",
            "Deletions needed to partition (10-regular)",
            "nodes",
            "nodes deleted",
        );
        report.push_series(Series::new(
            "Graph",
            vec![n as f64],
            vec![threshold.deletions_to_partition as f64],
        ));
        report.push_series(Series::new(
            "f(x) = 0.4x",
            vec![n as f64],
            vec![0.4 * n as f64],
        ));
        report.push_note(format!(
            "n = {:>6}: partitioned after {:>6} deletions ({:.1}% of nodes)",
            n,
            threshold.deletions_to_partition,
            threshold.fraction() * 100.0
        ));
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_merge_into_one_report_with_all_sizes() {
        let reports = PartitionThreshold.run(&ScenarioParams::default());
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.series.len(), 2);
        assert_eq!(report.series[0].len(), STEPS);
        assert_eq!(report.notes.len(), STEPS);
        // Sizes ascend because parts merge in part order.
        let xs = &report.series[0].x;
        assert!(
            xs.windows(2).all(|w| w[0] <= w[1]),
            "sizes in order: {xs:?}"
        );
        // Thresholds stay in a plausible band around the 40% line.
        for (x, y) in report.series[0].x.iter().zip(&report.series[0].y) {
            let fraction = y / x;
            assert!(
                (0.2..0.95).contains(&fraction),
                "n = {x}: fraction {fraction}"
            );
        }
    }
}
