//! Figure 6: number of simultaneous node deletions needed to partition a
//! `k`-regular graph, for sizes n = 1000 .. 15000. The paper reports the
//! threshold tracks roughly 40% of the nodes (the `f(x) = 0.4x` reference
//! line).
//!
//! Overrides (`--set KEY=VALUE`):
//! * `k` — overlay degree (default 10, the paper's setting);
//! * `steps` — number of population sizes swept (default 15);
//! * `step-nodes` — paper-scale population increment per step (default
//!   1000, i.e. sizes 1000, 2000, ..).

use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario::partition_threshold;
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

const STEPS: usize = 15;
const DEGREE: usize = 10;
const STEP_NODES: usize = 1000;

/// The Figure 6 scenario; one part per graph size, merged point-wise.
pub struct PartitionThreshold;

impl Scenario for PartitionThreshold {
    fn id(&self) -> &str {
        "fig6"
    }

    fn title(&self) -> &str {
        "Figure 6 — simultaneous deletions needed to partition a k-regular graph (default k = 10)"
    }

    fn override_keys(&self) -> Option<Vec<&str>> {
        Some(vec!["k", "steps", "step-nodes"])
    }

    fn parts(&self, params: &ScenarioParams) -> usize {
        params.override_usize("steps", STEPS).max(1)
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let k = params.override_usize("k", DEGREE);
        let paper_n = (part + 1) * params.override_usize("step-nodes", STEP_NODES);
        let n = Scale::from_params(params).population(paper_n);
        let threshold = partition_threshold(n, k, (n / 100).max(1), rng);

        let mut report = ExperimentReport::new(
            "fig6",
            format!("Deletions needed to partition ({k}-regular)"),
            "nodes",
            "nodes deleted",
        );
        report.push_series(Series::new(
            "Graph",
            vec![n as f64],
            vec![threshold.deletions_to_partition as f64],
        ));
        report.push_series(Series::new(
            "f(x) = 0.4x",
            vec![n as f64],
            vec![0.4 * n as f64],
        ));
        report.push_note(format!(
            "n = {:>6}: partitioned after {:>6} deletions ({:.1}% of nodes)",
            n,
            threshold.deletions_to_partition,
            threshold.fraction() * 100.0
        ));
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_merge_into_one_report_with_all_sizes() {
        let reports = PartitionThreshold.run(&ScenarioParams::default());
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.series.len(), 2);
        assert_eq!(report.series[0].len(), STEPS);
        assert_eq!(report.notes.len(), STEPS);
        // Sizes ascend because parts merge in part order.
        let xs = &report.series[0].x;
        assert!(
            xs.windows(2).all(|w| w[0] <= w[1]),
            "sizes in order: {xs:?}"
        );
        // Thresholds stay in a plausible band around the 40% line.
        for (x, y) in report.series[0].x.iter().zip(&report.series[0].y) {
            let fraction = y / x;
            assert!(
                (0.2..0.95).contains(&fraction),
                "n = {x}: fraction {fraction}"
            );
        }
    }

    #[test]
    fn overrides_change_the_sweep() {
        let params = ScenarioParams::default()
            .with_override("steps", "3")
            .with_override("step-nodes", "2000");
        assert_eq!(PartitionThreshold.parts(&params), 3);
        let reports = PartitionThreshold.run(&params);
        let xs = &reports[0].series[0].x;
        assert_eq!(xs.len(), 3);
        // Quick scale divides paper sizes by 10: 2000/4000/6000 -> 200/400/600.
        assert_eq!(xs, &vec![200.0, 400.0, 600.0]);

        // A sparser overlay partitions earlier than the default k = 10 at
        // the same population, so the k override demonstrably flows in.
        let sparse = ScenarioParams::default()
            .with_override("steps", "1")
            .with_override("step-nodes", "5000")
            .with_override("k", "4");
        let dense = ScenarioParams::default()
            .with_override("steps", "1")
            .with_override("step-nodes", "5000");
        let sparse_y = PartitionThreshold.run(&sparse)[0].series[0].y[0];
        let dense_y = PartitionThreshold.run(&dense)[0].series[0].y[0];
        assert!(
            sparse_y < dense_y,
            "k = 4 should partition before k = 10 (got {sparse_y} vs {dense_y})"
        );
    }

    #[test]
    fn declared_override_keys_cover_the_consumed_ones() {
        let keys = PartitionThreshold.override_keys().unwrap();
        for consumed in ["k", "steps", "step-nodes"] {
            assert!(keys.contains(&consumed), "missing '{consumed}'");
        }
    }
}
