//! Figure 7: the SOAP (soaping) attack — clones of a compromised node
//! gradually surround each bot until the botnet is partitioned into
//! contained nodes, plus the §VII-A counter-defense cost estimates.

use mitigation::defenses::{PeeringRateLimiter, PowChallenge};
use mitigation::soap::{SoapAttack, SoapConfig};
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

/// The Figure 7 scenario: a full SOAP campaign against a basic OnionBot.
pub struct SoapCampaign;

impl Scenario for SoapCampaign {
    fn id(&self) -> &str {
        "fig7"
    }

    fn title(&self) -> &str {
        "Figure 7 — SOAP containment of a basic OnionBot"
    }

    fn run_part(
        &self,
        _part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let n = Scale::from_params(params).population(1000);
        let k = 10usize;
        let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), rng);
        let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
        let outcome = attack.run(&mut overlay, rng);

        let mut report = ExperimentReport::new(
            "fig7",
            format!("SOAP campaign progress (n = {n}, k = {k})"),
            "iteration",
            "bots",
        );
        let iterations: Vec<f64> = outcome.trace.iter().map(|p| p.iteration as f64).collect();
        report.push_series(Series::new(
            "contained bots",
            iterations.clone(),
            outcome
                .trace
                .iter()
                .map(|p| p.contained_bots as f64)
                .collect(),
        ));
        report.push_series(Series::new(
            "discovered bots",
            iterations.clone(),
            outcome
                .trace
                .iter()
                .map(|p| p.discovered_bots as f64)
                .collect(),
        ));
        report.push_series(Series::new(
            "clones created",
            iterations,
            outcome
                .trace
                .iter()
                .map(|p| p.clones_created as f64)
                .collect(),
        ));
        report.push_note(format!(
            "botnet neutralized: {} (iterations = {}, clones = {})",
            outcome.neutralized, outcome.iterations, outcome.clones_created
        ));

        // Ablation: the paper's anticipated counter-defenses raise the
        // cost of each clone acceptance (§VII-A).
        let limiter = PeeringRateLimiter {
            base_delay_secs: 60,
            per_peer_delay_secs: 300,
        };
        let clones_per_bot = (outcome.clones_created as f64
            / outcome
                .trace
                .last()
                .map_or(1.0, |p| p.discovered_bots.max(1) as f64))
        .ceil() as usize;
        report.push_note(format!(
            "rate limiting: accepting {clones_per_bot} clones at one bot costs {} simulated hours (vs {} hours for its initial {k} rallies)",
            limiter.total_delay(k, clones_per_bot) / 3600,
            limiter.total_delay(0, k) / 3600
        ));
        for difficulty in [8u32, 12, 16] {
            let challenge = PowChallenge {
                challenge: b"peer-with-me".to_vec(),
                difficulty_bits: difficulty,
            };
            let cost = challenge.solve(u64::MAX >> 16).map(|(_, c)| c).unwrap_or(0);
            report.push_note(format!(
                "proof of work at {difficulty} bits: ~{cost} hash evaluations per clone, ~{} per contained bot",
                cost * clones_per_bot as u64
            ));
        }
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_neutralizes_the_quick_scale_botnet() {
        let reports = SoapCampaign.run(&ScenarioParams::default());
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.series.len(), 3);
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("botnet neutralized: true")));
        assert!(report.notes.iter().any(|n| n.contains("proof of work")));
    }
}
