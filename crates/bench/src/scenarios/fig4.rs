//! Figure 4: average closeness centrality (4a/4b) and degree centrality
//! (4c/4d) of a k-regular overlay (k = 5, 10, 15) under 30% node
//! deletions, with and without pruning.

use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams};
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

const DEGREES: [usize; 3] = [5, 10, 15];

/// The Figure 4 scenario; one part per `(pruning, k)` combination, so the
/// six variants run in parallel under the runner.
pub struct CentralityUnderTakedown;

impl Scenario for CentralityUnderTakedown {
    fn id(&self) -> &str {
        "fig4"
    }

    fn title(&self) -> &str {
        "Figure 4 — centrality under 30% deletions (k = 5/10/15, ±pruning)"
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        2 * DEGREES.len()
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let pruning = part >= DEGREES.len();
        let k = DEGREES[part % DEGREES.len()];
        let scale = Scale::from_params(params);
        let n = scale.population(5000);
        let samples = scale.metric_samples();

        let config = if pruning {
            DdsrConfig::for_degree(k)
        } else {
            DdsrConfig::without_pruning(k)
        };
        let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, config, rng);
        let deletions = (n as f64 * 0.3) as usize;
        let takedown = TakedownParams {
            deletions,
            sample_every: (deletions / 15).max(1),
            metric_samples: samples,
        };
        let trace = gradual_takedown(
            &mut overlay,
            &ids,
            TakedownMode::SelfRepairing,
            takedown,
            rng,
        );
        let x: Vec<f64> = trace.iter().map(|s| s.nodes_deleted as f64).collect();

        let mode = if pruning {
            "with pruning"
        } else {
            "without pruning"
        };
        let (closeness_id, degree_id) = if pruning {
            ("fig4b", "fig4d")
        } else {
            ("fig4a", "fig4c")
        };
        let mut closeness = ExperimentReport::new(
            closeness_id,
            format!("Average closeness centrality ({mode}), n = {n} (paper: 5000)"),
            "nodes deleted",
            "closeness centrality",
        );
        closeness.push_series(Series::new(
            format!("deg = {k}"),
            x.clone(),
            trace.iter().map(|s| s.closeness_centrality).collect(),
        ));
        let mut degree = ExperimentReport::new(
            degree_id,
            format!("Average degree centrality ({mode}), n = {n} (paper: 5000)"),
            "nodes deleted",
            "degree centrality",
        );
        degree.push_series(Series::new(
            format!("deg = {k}"),
            x,
            trace.iter().map(|s| s.degree_centrality).collect(),
        ));
        vec![closeness, degree]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_cover_both_pruning_modes_and_all_degrees() {
        let scenario = CentralityUnderTakedown;
        let params = ScenarioParams::default();
        assert_eq!(scenario.parts(&params), 6);
        // Part 0 is (no pruning, k = 5): reports fig4a/fig4c.
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        let reports = scenario.run_part(0, &params, &mut rng);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].id, "fig4a");
        assert_eq!(reports[1].id, "fig4c");
        assert_eq!(reports[0].series[0].label, "deg = 5");
        // Part 5 is (pruning, k = 15): reports fig4b/fig4d.
        let reports = scenario.run_part(5, &params, &mut rng);
        assert_eq!(reports[0].id, "fig4b");
        assert_eq!(reports[0].series[0].label, "deg = 15");
    }
}
