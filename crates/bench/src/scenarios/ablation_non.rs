//! Ablation: the value of Neighbors-of-Neighbor lookahead (§IV-C).
//!
//! The paper builds the overlay on NoN knowledge and cites Manku et al.'s
//! result that NoN greedy routing is asymptotically optimal. This ablation
//! compares plain greedy routing (one-hop knowledge) against NoN greedy
//! routing (two-hop lookahead) on the same overlays: delivery rate and
//! stretch versus the true shortest path.

use onion_graph::generators::random_regular;
use onionbots_core::routing::{greedy_route, non_greedy_route, shortest_path_hops};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

const DEGREES: [usize; 5] = [4, 6, 8, 10, 15];
const TRIALS: usize = 200;

/// The NoN-lookahead ablation; one part per overlay degree.
pub struct NonLookahead;

impl Scenario for NonLookahead {
    fn id(&self) -> &str {
        "ablation-non"
    }

    fn title(&self) -> &str {
        "Ablation — greedy routing with and without NoN lookahead"
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        DEGREES.len()
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let k = DEGREES[part];
        let n = Scale::from_params(params).population(2000);
        let (graph, ids) = random_regular(n, k, rng);
        let mut ok_greedy = 0usize;
        let mut ok_non = 0usize;
        let mut sum_stretch_greedy = 0.0;
        let mut sum_stretch_non = 0.0;
        let mut stretch_samples_greedy = 0usize;
        let mut stretch_samples_non = 0usize;
        for _ in 0..TRIALS {
            let src = *ids.choose(rng).expect("non-empty");
            let dst = *ids.choose(rng).expect("non-empty");
            if src == dst {
                continue;
            }
            let Some(optimal) = shortest_path_hops(&graph, src, dst) else {
                continue;
            };
            let g = greedy_route(&graph, src, dst, n);
            let non = non_greedy_route(&graph, src, dst, n);
            if g.delivered {
                ok_greedy += 1;
                sum_stretch_greedy += g.hops() as f64 / optimal.max(1) as f64;
                stretch_samples_greedy += 1;
            }
            if non.delivered {
                ok_non += 1;
                sum_stretch_non += non.hops() as f64 / optimal.max(1) as f64;
                stretch_samples_non += 1;
            }
        }

        let x = vec![k as f64];
        let mut delivery = ExperimentReport::new(
            "ablation-non-delivery",
            format!("Delivery rate of greedy routing, n = {n}"),
            "degree",
            "delivery rate",
        );
        delivery.push_series(Series::new(
            "greedy (1-hop)",
            x.clone(),
            vec![ok_greedy as f64 / TRIALS as f64],
        ));
        delivery.push_series(Series::new(
            "NoN greedy (2-hop)",
            x.clone(),
            vec![ok_non as f64 / TRIALS as f64],
        ));
        let mut stretch = ExperimentReport::new(
            "ablation-non-stretch",
            "Path stretch vs. shortest path (delivered routes)",
            "degree",
            "stretch",
        );
        stretch.push_series(Series::new(
            "greedy (1-hop)",
            x.clone(),
            vec![sum_stretch_greedy / stretch_samples_greedy.max(1) as f64],
        ));
        stretch.push_series(Series::new(
            "NoN greedy (2-hop)",
            x,
            vec![sum_stretch_non / stretch_samples_non.max(1) as f64],
        ));
        vec![delivery, stretch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookahead_never_hurts_delivery() {
        let mut rng = rand::SeedableRng::seed_from_u64(9);
        let reports = NonLookahead.run_part(2, &ScenarioParams::default(), &mut rng);
        assert_eq!(reports.len(), 2);
        let delivery = &reports[0];
        let greedy = delivery.series[0].y[0];
        let non = delivery.series[1].y[0];
        assert!(
            non >= greedy,
            "NoN delivery {non} not below plain greedy {greedy}"
        );
    }
}
