//! Figure 5: connected components (5a/5b), degree centrality (5c/5d) and
//! diameter (5e/5f) of DDSR versus a normal graph under incremental node
//! deletions, for 10-regular graphs of 5000 and 15000 nodes.

use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams};
use sim::scenario_api::{part_seed, Scenario, ScenarioParams};

use crate::Scale;

/// `(paper population, report ids for components/degree/diameter)`.
const SIZES: [(usize, [&str; 3]); 2] = [
    (5000, ["fig5a", "fig5c", "fig5e"]),
    (15000, ["fig5b", "fig5d", "fig5f"]),
];

/// The Figure 5 scenario; one part per `(population, mode)` pair.
pub struct DdsrVersusNormal;

impl Scenario for DdsrVersusNormal {
    fn id(&self) -> &str {
        "fig5"
    }

    fn title(&self) -> &str {
        "Figure 5 — DDSR vs. normal graph under incremental deletions"
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        2 * SIZES.len()
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        _rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let (paper_n, report_ids) = SIZES[part / 2];
        let mode = if part.is_multiple_of(2) {
            TakedownMode::SelfRepairing
        } else {
            TakedownMode::Normal
        };
        let label = match mode {
            TakedownMode::SelfRepairing => "DDSR",
            TakedownMode::Normal => "Normal",
        };
        let scale = Scale::from_params(params);
        let n = scale.population(paper_n);
        let samples = scale.metric_samples();

        // Paired comparison: both modes of one population size share a
        // seed derived from the size alone, so DDSR and Normal face the
        // same initial graph and the same deletion order — differences in
        // the curves are attributable to the repair mechanism, not to
        // graph-realization noise. The per-part RNG is deliberately
        // unused.
        let mut rng = StdRng::seed_from_u64(part_seed(params.seed, self.id(), part / 2));
        let rng = &mut rng;

        let k = 10usize;
        let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), rng);
        // Delete ~96% of the nodes, sampling along the way (the paper
        // plots all the way to the right edge).
        let deletions = n * 96 / 100;
        let takedown = TakedownParams {
            deletions,
            sample_every: (deletions / 20).max(1),
            metric_samples: samples,
        };
        let trace = gradual_takedown(&mut overlay, &ids, mode, takedown, rng);
        let x: Vec<f64> = trace.iter().map(|s| s.nodes_deleted as f64).collect();

        let mut components = ExperimentReport::new(
            report_ids[0],
            format!("Connected components, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "connected components",
        );
        components.push_series(Series::new(
            label,
            x.clone(),
            trace
                .iter()
                .map(|s| s.connected_components as f64)
                .collect(),
        ));
        let mut degree = ExperimentReport::new(
            report_ids[1],
            format!("Degree centrality, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "degree centrality",
        );
        degree.push_series(Series::new(
            label,
            x.clone(),
            trace.iter().map(|s| s.degree_centrality).collect(),
        ));
        let mut diameter = ExperimentReport::new(
            report_ids[2],
            format!("Diameter of the largest component, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "diameter",
        );
        diameter.push_series(Series::new(
            label,
            x,
            trace
                .iter()
                .map(|s| s.diameter.unwrap_or(0) as f64)
                .collect(),
        ));
        vec![components, degree, diameter]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_paired_on_the_same_initial_graph() {
        // DDSR (part 0) and Normal (part 1) of one population size must
        // start from an identical graph and deletion order so the figure
        // compares the repair mechanism, not two random graphs. The
        // zero-deletion sample is taken before any mode-specific behavior
        // kicks in, so all its metrics must match exactly.
        let scenario = DdsrVersusNormal;
        let params = ScenarioParams::default();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        let ddsr = scenario.run_part(0, &params, &mut rng);
        let normal = scenario.run_part(1, &params, &mut rng);
        for (d, n) in ddsr.iter().zip(&normal) {
            assert_eq!(d.id, n.id);
            assert_eq!(
                d.series[0].y[0], n.series[0].y[0],
                "initial sample differs for {}: modes not paired",
                d.id
            );
        }
    }

    #[test]
    fn parts_map_onto_sizes_and_modes() {
        let scenario = DdsrVersusNormal;
        assert_eq!(scenario.parts(&ScenarioParams::default()), 4);
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        // Part 3 is (15000 paper nodes, Normal).
        let reports = scenario.run_part(3, &ScenarioParams::default(), &mut rng);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].id, "fig5b");
        assert_eq!(reports[2].id, "fig5f");
        assert_eq!(reports[0].series[0].label, "Normal");
    }
}
