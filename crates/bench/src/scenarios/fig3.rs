//! Figure 3: step-by-step trace of the self-repair process on a 3-regular
//! 12-node graph (the paper's worked example).

use onion_graph::components::component_count;
use onion_graph::graph::Graph;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

/// The Figure 3 scenario: repair trace on the worked example graph.
pub struct RepairTrace;

impl Scenario for RepairTrace {
    fn id(&self) -> &str {
        "fig3"
    }

    fn title(&self) -> &str {
        "Figure 3 — self-repair trace on a 3-regular graph with 12 nodes"
    }

    fn run_part(
        &self,
        _part: usize,
        _params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        // A 3-regular circulant graph on 12 nodes: i ~ i±1 and i ~ i+6.
        let (mut g, ids) = Graph::with_nodes(12);
        for i in 0..12usize {
            g.add_edge(ids[i], ids[(i + 1) % 12]);
            g.add_edge(ids[i], ids[(i + 6) % 12]);
        }
        let mut overlay = DdsrOverlay::from_graph(g, DdsrConfig::without_pruning(3));

        let mut report = ExperimentReport::new(self.id(), self.title(), "step", "count");
        let mut steps = vec![1.0];
        let mut edges = vec![overlay.graph().edge_count() as f64];
        let mut components = vec![component_count(overlay.graph()) as f64];
        report.push_note(format!(
            "step 1: {} nodes, {} edges, {} component(s)",
            overlay.node_count(),
            overlay.graph().edge_count(),
            component_count(overlay.graph())
        ));

        // Delete the same kind of sequence the figure shows (eight steps).
        let deletions = [7usize, 11, 8, 10, 9, 1, 4, 5];
        for (step, &victim) in deletions.iter().enumerate() {
            let neighbors = overlay.peers(ids[victim]).unwrap_or_default();
            let edges_before = overlay.graph().edge_count();
            overlay.remove_node_with_repair(ids[victim], rng);
            let mut new_edges: Vec<String> = Vec::new();
            for (i, &a) in neighbors.iter().enumerate() {
                for &b in neighbors.iter().skip(i + 1) {
                    if overlay.graph().has_edge(a, b) {
                        new_edges.push(format!("({}, {})", a.0, b.0));
                    }
                }
            }
            report.push_note(format!(
                "step {}: delete node {:>2} -> repair links among {:?}: {} | nodes={} edges={} (was {}) components={}",
                step + 2,
                victim,
                neighbors.iter().map(|n| n.0).collect::<Vec<_>>(),
                if new_edges.is_empty() {
                    "none needed".to_string()
                } else {
                    new_edges.join(" ")
                },
                overlay.node_count(),
                overlay.graph().edge_count(),
                edges_before,
                component_count(overlay.graph())
            ));
            steps.push(step as f64 + 2.0);
            edges.push(overlay.graph().edge_count() as f64);
            components.push(component_count(overlay.graph()) as f64);
        }
        report.push_note(format!(
            "final graph remains a single component: {}",
            component_count(overlay.graph()) == 1
        ));
        report.push_series(Series::new("edges", steps.clone(), edges));
        report.push_series(Series::new("components", steps, components));
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_stays_connected_through_all_eight_deletions() {
        let reports = RepairTrace.run(&ScenarioParams::default());
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        let components = report
            .series
            .iter()
            .find(|s| s.label == "components")
            .unwrap();
        assert_eq!(components.len(), 9, "initial state + eight deletions");
        assert!(components.y.iter().all(|&c| c == 1.0), "never partitions");
        assert!(report.notes.len() >= 10);
    }
}
