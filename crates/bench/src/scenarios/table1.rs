//! Table I: cryptographic use in different botnet families, plus the
//! OnionBot design row for contrast.

use botnet::crypto_catalog::{onionbot_row, render_table, table_one};
use rand::rngs::StdRng;
use sim::experiment::ExperimentReport;
use sim::scenario_api::{Scenario, ScenarioParams};

/// The Table I scenario: a purely tabular report carried in notes.
pub struct CryptoCatalog;

impl Scenario for CryptoCatalog {
    fn id(&self) -> &str {
        "table1"
    }

    fn title(&self) -> &str {
        "Table I — cryptographic use in different botnets"
    }

    fn run_part(
        &self,
        _part: usize,
        _params: &ScenarioParams,
        _rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let mut report = ExperimentReport::new("table1", self.title(), "-", "-");
        for line in render_table(&table_one()).lines() {
            report.push_note(line.to_string());
        }
        report.push_note(String::new());
        report.push_note("With the OnionBot design for comparison:".to_string());
        let mut rows = table_one();
        rows.push(onionbot_row());
        for line in render_table(&rows).lines() {
            report.push_note(line.to_string());
        }
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_known_botnets_and_the_onionbot_row() {
        let reports = CryptoCatalog.run(&ScenarioParams::default());
        let notes = reports[0].notes.join("\n");
        assert!(notes.contains("OnionBot"));
        assert!(reports[0].series.is_empty(), "Table I has no series");
    }
}
