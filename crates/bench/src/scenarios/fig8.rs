//! Figure 8: the SuperOnion construction (n = 5 hosts, m = 3 virtual
//! nodes, i = 2 peers) and its recovery behaviour when virtual nodes are
//! soaped.

use mitigation::superonion::{HostId, SuperOnion, SuperOnionConfig};
use rand::rngs::StdRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

/// The Figure 8 scenario: soaping and recovery of one host's virtual
/// nodes.
pub struct SuperOnionRecovery;

impl Scenario for SuperOnionRecovery {
    fn id(&self) -> &str {
        "fig8"
    }

    fn title(&self) -> &str {
        "Figure 8 — SuperOnion construction and recovery under soaping"
    }

    fn run_part(
        &self,
        _part: usize,
        _params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let config = SuperOnionConfig::figure8();
        let mut so = SuperOnion::build(config, rng);

        let mut report = ExperimentReport::new(
            "fig8",
            format!(
                "SuperOnion recovery, n = {}, m = {}, i = {}",
                config.hosts, config.virtual_per_host, config.peers_per_virtual
            ),
            "virtual nodes soaped",
            "reachable virtual nodes (host 0)",
        );
        report.push_note(format!(
            "virtual nodes: {}, edges: {}",
            so.virtual_node_count(),
            so.graph().edge_count()
        ));
        for h in 0..config.hosts {
            let host = HostId(h);
            let probe = so.probe(host);
            report.push_note(format!(
                "host {h}: virtual nodes {:?}, probe reachable {}/{}, gossip messages {}",
                so.virtual_nodes(host)
                    .iter()
                    .map(|v| v.0)
                    .collect::<Vec<_>>(),
                probe.reachable.len(),
                config.virtual_per_host,
                probe.messages
            ));
        }

        let host = HostId(0);
        let mut soaped = vec![0.0];
        let mut reachable = vec![so.probe(host).reachable.len() as f64];
        let mut operational = vec![1.0];
        let virtuals = so.virtual_nodes(host);
        for (i, &victim) in virtuals.iter().enumerate() {
            so.soap_virtual_node(victim);
            let probe = so.probe(host);
            soaped.push(i as f64 + 1.0);
            reachable.push(probe.reachable.len() as f64);
            operational.push(f64::from(u8::from(so.host_operational(host))));
            report.push_note(format!(
                "after soaping {} virtual node(s): reachable {}/{} -> host operational: {}",
                i + 1,
                probe.reachable.len(),
                config.virtual_per_host,
                so.host_operational(host)
            ));
        }
        report.push_series(Series::new("reachable", soaped.clone(), reachable));
        report.push_series(Series::new("host operational", soaped, operational));

        let replaced = so.recover(host, rng);
        let probe = so.probe(host);
        report.push_note(format!(
            "recovery: host 0 replaced {replaced} virtual node(s); probe now reaches {}/{} -> operational: {}",
            probe.reachable.len(),
            config.virtual_per_host,
            so.host_operational(host)
        ));
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soaping_all_virtual_nodes_disables_then_recovery_restores() {
        let reports = SuperOnionRecovery.run(&ScenarioParams::default());
        let report = &reports[0];
        let operational = report
            .series
            .iter()
            .find(|s| s.label == "host operational")
            .unwrap();
        assert_eq!(operational.y.first(), Some(&1.0));
        assert_eq!(
            operational.y.last(),
            Some(&0.0),
            "fully soaped host is down"
        );
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("recovery: host 0 replaced")));
    }
}
