//! Ablation: SOAP versus the §VII-A counter-defenses (proof of work and
//! rate limiting), quantifying the resilience/recoverability trade-off the
//! paper leaves open.
//!
//! Overrides (`--set KEY=VALUE`):
//! * `n` — paper-scale botnet population (default 1000);
//! * `k` — overlay degree (default 10).

use mitigation::defended_soap::{run_defended_soap, DefenseConfig};
use mitigation::defenses::PeeringRateLimiter;
use mitigation::soap::SoapConfig;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

fn defense_configs() -> Vec<(&'static str, DefenseConfig)> {
    vec![
        ("none (basic OnionBot)", DefenseConfig::none()),
        (
            "rate limiting only",
            DefenseConfig {
                pow_base_bits: 0,
                rate_limiter: PeeringRateLimiter {
                    base_delay_secs: 60,
                    per_peer_delay_secs: 300,
                },
            },
        ),
        (
            "PoW 10 bits only",
            DefenseConfig {
                pow_base_bits: 10,
                rate_limiter: PeeringRateLimiter {
                    base_delay_secs: 0,
                    per_peer_delay_secs: 0,
                },
            },
        ),
        ("PoW 10 bits + rate limit", DefenseConfig::standard()),
        (
            "PoW 16 bits + rate limit",
            DefenseConfig {
                pow_base_bits: 16,
                ..DefenseConfig::standard()
            },
        ),
    ]
}

/// The defended-SOAP ablation; one part per defense configuration.
pub struct SoapDefenses;

impl Scenario for SoapDefenses {
    fn id(&self) -> &str {
        "ablation-soap-defenses"
    }

    fn title(&self) -> &str {
        "Ablation — SOAP against defended OnionBots"
    }

    fn override_keys(&self) -> Option<Vec<&str>> {
        Some(vec!["n", "k"])
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        defense_configs().len()
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        _rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let (label, defense) = defense_configs().swap_remove(part);
        let n = Scale::from_params(params).population(params.override_usize("n", 1000));
        let k = params.override_usize("k", 10);
        // Every defense configuration attacks the *same* overlay (same
        // seed), so differences in the outcome columns are attributable to
        // the defense alone — the per-part RNG is deliberately unused.
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x50AB);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
        let outcome = run_defended_soap(
            &mut overlay,
            ids[0],
            SoapConfig::default(),
            defense,
            &mut rng,
        );

        let x = vec![part as f64];
        let mut report = ExperimentReport::new(
            "ablation-soap-defenses",
            format!("SOAP against defended OnionBots (n = {n}, k = {k})"),
            "defense #",
            "outcome",
        );
        report.push_series(Series::new(
            "neutralized (1=yes)",
            x.clone(),
            vec![f64::from(u8::from(outcome.soap.neutralized))],
        ));
        report.push_series(Series::new(
            "clones created",
            x.clone(),
            vec![outcome.soap.clones_created as f64],
        ));
        report.push_series(Series::new(
            "defender hashes",
            x.clone(),
            vec![outcome.defender_hash_evaluations as f64],
        ));
        report.push_series(Series::new(
            "defender wait (h)",
            x.clone(),
            vec![outcome.defender_wait_secs as f64 / 3600.0],
        ));
        report.push_series(Series::new(
            "repair delay (s/takedown)",
            x,
            vec![outcome.repair_delay_secs_per_takedown as f64],
        ));
        report.push_note(format!(
            "defense #{part}: {label} -> neutralized={} clones={} hashes={} wait={:.1}h repair_delay={}s/takedown",
            outcome.soap.neutralized,
            outcome.soap.clones_created,
            outcome.defender_hash_evaluations,
            outcome.defender_wait_secs as f64 / 3600.0,
            outcome.repair_delay_secs_per_takedown
        ));
        if part + 1 == defense_configs().len() {
            report.push_note(
                "Take-away: basic PoW and rate limiting do not prevent neutralization of the \
                 basic design; they multiply the defender's cost while also taxing the botnet's \
                 own repair, which is the recoverability/resilience trade-off §VII-A identifies."
                    .to_string(),
            );
        }
        vec![report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_defense_raises_defender_hash_cost() {
        let scenario = SoapDefenses;
        let params = ScenarioParams::default();
        let mut rng = StdRng::seed_from_u64(0);
        let none = scenario.run_part(0, &params, &mut rng);
        let pow = scenario.run_part(2, &params, &mut rng);
        let hashes = |r: &ExperimentReport| {
            r.series
                .iter()
                .find(|s| s.label == "defender hashes")
                .unwrap()
                .y[0]
        };
        assert_eq!(hashes(&none[0]), 0.0, "no PoW, no hashing");
        assert!(hashes(&pow[0]) > 0.0, "PoW forces hash work");
    }

    #[test]
    fn population_override_flows_into_the_report_title() {
        let scenario = SoapDefenses;
        let params = ScenarioParams::default().with_override("n", "600");
        let mut rng = StdRng::seed_from_u64(0);
        let reports = scenario.run_part(0, &params, &mut rng);
        // Quick scale divides the paper population by 10: n = 600 -> 100
        // (the Scale::population floor).
        assert!(
            reports[0].title.contains("n = 100"),
            "title was '{}'",
            reports[0].title
        );
        let keys = scenario.override_keys().unwrap();
        assert!(keys.contains(&"n") && keys.contains(&"k"));
    }
}
