//! `scale` — churn sweeps at 10^4–10^7 nodes on the slab graph core.
//!
//! Not a paper figure: this scenario is the million-node proving ground the
//! ROADMAP's north star asks for. Each part builds a k-regular overlay at
//! one population size over a fixed [`ShardGrid`]
//! ([`DdsrOverlay::new_regular_sharded`]: per-shard pairing-model streams
//! split from the part seed, deterministic ascending-shard merge) and then
//! drives it through takedown *waves*: every wave removes a fixed fraction
//! of the surviving population in one
//! [`DdsrOverlay::remove_nodes_sharded`] batch (shard-partitioned
//! coalesced repair and prune planning, sequential reconciliation), the
//! fig4/fig5-style churn pattern at populations the per-victim path could
//! not sustain. Worker threads steal shards under the ambient thread
//! budget — `--threads-per-item` now governs construction and repair
//! fan-out, and output stays byte-identical at any thread count because
//! the grid, not the machine, defines the RNG streams. Robustness
//! (largest-component fraction), degree discipline and cumulative repair
//! work are sampled after every wave; a sampled diameter estimate closes
//! each part.
//!
//! Like every registered scenario its parts are cache-eligible: reports
//! are deterministic for a fixed `(seed, scale, overrides)` triple, and
//! the consumed override keys are declared so unrelated `--set` flags do
//! not invalidate cached entries.
//!
//! ```text
//! run_experiments --only scale                      # 10^4 and 3·10^4 nodes
//! run_experiments --only scale --scale full         # 10^4 .. 10^7
//! run_experiments --only scale --set n=2000 --set waves=4   # custom sweep
//! run_experiments --only scale --set shards=8       # coarser shard grid
//! ```

use onion_graph::components::largest_component_fraction;
use onion_graph::graph::NodeId;
use onion_graph::metrics::sampled_diameter;
use onionbots_core::shard::{default_shards_for, ShardGrid};
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sim::experiment::{ExperimentReport, Series};
use sim::scenario_api::{Scenario, ScenarioParams};

use crate::Scale;

/// Population sizes per part at quick scale.
const QUICK_SIZES: [usize; 2] = [10_000, 30_000];
/// Population sizes per part at full scale — the 10^6 row is the run the
/// slab core exists for; the 10^7 row is the stretch row sharded
/// construction opened up (expect minutes, not hours).
const FULL_SIZES: [usize; 4] = [10_000, 100_000, 1_000_000, 10_000_000];

/// The registered `scale` scenario.
pub struct ScaleChurn;

impl ScaleChurn {
    fn sizes(params: &ScenarioParams) -> Vec<usize> {
        if let Some(n) = params.override_usize_opt("n") {
            // An explicit population collapses the sweep to one part.
            vec![n]
        } else if Scale::from_params(params).is_full() {
            FULL_SIZES.to_vec()
        } else {
            QUICK_SIZES.to_vec()
        }
    }
}

impl Scenario for ScaleChurn {
    fn id(&self) -> &str {
        "scale"
    }

    fn title(&self) -> &str {
        "Scale — batched takedown waves at 10^4-10^7 nodes (sharded slab graph core)"
    }

    fn override_keys(&self) -> Option<Vec<&str>> {
        Some(vec![
            "n",
            "k",
            "waves",
            "wave-frac",
            "diameter-samples",
            "shards",
        ])
    }

    fn parts(&self, params: &ScenarioParams) -> usize {
        Self::sizes(params).len()
    }

    fn run_part(
        &self,
        part: usize,
        params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let n = Self::sizes(params)[part];
        let k = params.override_usize("k", 10);
        let waves = params.override_usize("waves", 10);
        let wave_frac = params.override_f64("wave-frac", 0.05);
        let diameter_samples = params.override_usize("diameter-samples", 16);
        // An explicit `shards` override always wins; otherwise the grid
        // is gated on n so small (quick-scale) parts skip the sequential
        // mixing-swap merge that dominates them (see
        // `shard::default_shards_for`).
        let shards = params
            .override_usize_opt("shards")
            .unwrap_or_else(|| default_shards_for(n));
        let label = format!("n={n}");

        // The fixed logical grid defines the per-shard RNG streams; worker
        // threads (the `--threads-per-item` budget) merely steal shards,
        // so reports are byte-identical at any thread count.
        let grid = ShardGrid::new(n, k, shards);
        let (mut overlay, _ids) =
            DdsrOverlay::new_regular_sharded(n, k, DdsrConfig::for_degree(k), &grid, rng);

        let mut x = vec![0.0f64];
        let mut robustness = vec![largest_component_fraction(overlay.graph())];
        let mut max_degree = vec![overlay.graph().max_degree() as f64];
        let mut repair_edges = vec![0.0f64];
        for wave in 1..=waves {
            let live = overlay.graph().nodes();
            if live.len() <= 1 {
                break;
            }
            let wave_size = ((live.len() as f64 * wave_frac) as usize)
                .max(1)
                .min(live.len() - 1);
            let victims: Vec<NodeId> = live.choose_multiple(rng, wave_size).copied().collect();
            overlay.remove_nodes_sharded(&victims, &grid, rng);
            x.push(wave as f64);
            robustness.push(largest_component_fraction(overlay.graph()));
            max_degree.push(overlay.graph().max_degree() as f64);
            repair_edges.push(overlay.stats().edges_added as f64);
        }

        let mut robustness_report = ExperimentReport::new(
            "scale-robustness",
            "Largest-component fraction under batched takedown waves",
            "wave",
            "largest component fraction",
        );
        robustness_report.push_series(Series::new(label.clone(), x.clone(), robustness));

        let mut degree_report = ExperimentReport::new(
            "scale-degree",
            "Maximum degree under batched takedown waves (pruning discipline)",
            "wave",
            "max degree",
        );
        degree_report.push_series(Series::new(label.clone(), x.clone(), max_degree));

        let mut repair_report = ExperimentReport::new(
            "scale-repair",
            "Cumulative repair edges added by batched waves",
            "wave",
            "edges added",
        );
        repair_report.push_series(Series::new(label.clone(), x, repair_edges));
        let diameter = sampled_diameter(overlay.graph(), diameter_samples, rng);
        repair_report.push_note(format!(
            "{label}: after {waves} waves of {:.0}% churn: {} nodes live, sampled diameter {:?}, {} edges added, {} pruned",
            wave_frac * 100.0,
            overlay.node_count(),
            diameter,
            overlay.stats().edges_added,
            overlay.stats().edges_pruned,
        ));

        vec![robustness_report, degree_report, repair_report]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sim::scenario_api::part_seed;

    #[test]
    fn parts_follow_scale_and_overrides() {
        let scenario = ScaleChurn;
        let quick = ScenarioParams::default();
        assert_eq!(scenario.parts(&quick), QUICK_SIZES.len());
        let full = ScenarioParams {
            full_scale: true,
            ..ScenarioParams::default()
        };
        assert_eq!(scenario.parts(&full), FULL_SIZES.len());
        let pinned = ScenarioParams::default().with_override("n", "2000");
        assert_eq!(scenario.parts(&pinned), 1, "explicit n collapses the sweep");
    }

    #[test]
    fn churn_waves_keep_the_overlay_whole_and_pruned() {
        let scenario = ScaleChurn;
        let params = ScenarioParams::default()
            .with_override("n", "2000")
            .with_override("waves", "6");
        let mut rng = StdRng::seed_from_u64(part_seed(params.seed, scenario.id(), 0));
        let reports = scenario.run_part(0, &params, &mut rng);
        assert_eq!(reports.len(), 3);
        let robustness = &reports[0].series[0];
        assert_eq!(robustness.label, "n=2000");
        assert_eq!(robustness.x.len(), 7, "initial sample plus 6 waves");
        assert!(
            robustness.y.iter().all(|&frac| frac > 0.99),
            "DDSR repair must keep the overlay essentially whole: {:?}",
            robustness.y
        );
        let max_degree = &reports[1].series[0];
        assert!(
            max_degree.y.iter().all(|&d| d <= 15.0),
            "pruning must bound the degree at every wave: {:?}",
            max_degree.y
        );
        let repair = &reports[2].series[0];
        assert!(
            repair.y.windows(2).all(|w| w[0] <= w[1]),
            "cumulative repair work is monotone"
        );
        assert!(*repair.y.last().unwrap() > 0.0);
    }

    #[test]
    fn small_populations_default_to_one_shard_and_overrides_still_win() {
        let scenario = ScaleChurn;
        let run = |extra: Option<(&str, &str)>| {
            let mut params = ScenarioParams::default()
                .with_override("n", "2000")
                .with_override("waves", "3");
            if let Some((key, value)) = extra {
                params = params.with_override(key, value);
            }
            let mut rng = StdRng::seed_from_u64(part_seed(params.seed, scenario.id(), 0));
            scenario.run_part(0, &params, &mut rng)
        };
        let gated = run(None);
        assert_eq!(
            gated,
            run(Some(("shards", "1"))),
            "below the gate the default grid is a single shard"
        );
        assert_ne!(
            gated,
            run(Some(("shards", "8"))),
            "an explicit shards override beats the gate (different grid, different streams)"
        );
    }

    #[test]
    fn reports_are_deterministic_for_a_fixed_seed() {
        let scenario = ScaleChurn;
        let params = ScenarioParams::default()
            .with_override("n", "1500")
            .with_override("waves", "4");
        let run = |_: ()| {
            let mut rng = StdRng::seed_from_u64(part_seed(params.seed, scenario.id(), 0));
            scenario.run_part(0, &params, &mut rng)
        };
        assert_eq!(run(()), run(()), "same seed, same reports (cache contract)");
    }
}
