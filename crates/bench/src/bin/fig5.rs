//! Figure 5 (thin wrapper): delegates to the `fig5` registry scenario.
//! Pass `--scale full` (or legacy `full`) for the paper's population.

fn main() {
    onionbots_bench::scenarios::run_legacy("fig5");
}
