//! Figure 5: connected components (5a/5b), degree centrality (5c/5d) and
//! diameter (5e/5f) of DDSR versus a normal graph under incremental node
//! deletions, for 10-regular graphs of 5000 and 15000 nodes.

use onionbots_bench::Scale;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams, TakedownSample};
use sim::{ExperimentReport, Series};

fn run(n: usize, mode: TakedownMode, samples: usize, seed: u64) -> Vec<TakedownSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = 10usize;
    let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
    // Delete ~96% of the nodes, sampling along the way (the paper plots all
    // the way to the right edge).
    let deletions = n * 96 / 100;
    let params = TakedownParams {
        deletions,
        sample_every: (deletions / 20).max(1),
        metric_samples: samples,
    };
    gradual_takedown(&mut overlay, &ids, mode, params, &mut rng)
}

fn main() {
    let scale = Scale::from_env();
    let samples = scale.metric_samples();
    println!("# Figure 5 — DDSR vs. normal graph under incremental deletions\n");

    for (paper_n, comp_id, deg_id, diam_id) in [
        (5000usize, "fig5a", "fig5c", "fig5e"),
        (15000usize, "fig5b", "fig5d", "fig5f"),
    ] {
        let n = scale.population(paper_n);
        let ddsr = run(n, TakedownMode::SelfRepairing, samples, 5000 + paper_n as u64);
        let normal = run(n, TakedownMode::Normal, samples, 5000 + paper_n as u64);
        let x: Vec<f64> = ddsr.iter().map(|s| s.nodes_deleted as f64).collect();
        let xn: Vec<f64> = normal.iter().map(|s| s.nodes_deleted as f64).collect();

        let mut components = ExperimentReport::new(
            comp_id,
            format!("Connected components, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "connected components",
        );
        components.push_series(Series::new(
            "DDSR",
            x.clone(),
            ddsr.iter().map(|s| s.connected_components as f64).collect(),
        ));
        components.push_series(Series::new(
            "Normal",
            xn.clone(),
            normal.iter().map(|s| s.connected_components as f64).collect(),
        ));
        println!("{}", components.to_table());

        let mut degree = ExperimentReport::new(
            deg_id,
            format!("Degree centrality, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "degree centrality",
        );
        degree.push_series(Series::new(
            "DDSR",
            x.clone(),
            ddsr.iter().map(|s| s.degree_centrality).collect(),
        ));
        degree.push_series(Series::new(
            "Normal",
            xn.clone(),
            normal.iter().map(|s| s.degree_centrality).collect(),
        ));
        println!("{}", degree.to_table());

        let mut diameter = ExperimentReport::new(
            diam_id,
            format!("Diameter of the largest component, n = {n} (paper: {paper_n})"),
            "nodes deleted",
            "diameter",
        );
        diameter.push_series(Series::new(
            "DDSR",
            x,
            ddsr.iter()
                .map(|s| s.diameter.unwrap_or(0) as f64)
                .collect(),
        ));
        diameter.push_series(Series::new(
            "Normal",
            xn,
            normal
                .iter()
                .map(|s| s.diameter.unwrap_or(0) as f64)
                .collect(),
        ));
        println!("{}", diameter.to_table());
    }
}
