//! Unified experiment runner over the scenario registry.
//!
//! ```text
//! run_experiments --list
//! run_experiments --only fig4,fig7 --scale full --jobs 8 --out results/
//! run_experiments --only fig6 --cache-dir .exp-cache --set steps=5
//! run_experiments serve --socket /tmp/onionbots.sock --cache-dir .exp-cache
//! run_experiments submit --socket /tmp/onionbots.sock --only fig6
//! run_experiments status --socket /tmp/onionbots.sock
//! ```
//!
//! Selected scenarios (default: all) run through the [`sim::Runner`] on
//! the chosen execution backend (`--backend local|process`); results
//! render to stdout (`--format table|csv|json`) and, with `--out DIR`,
//! to per-report `.json`/`.csv` files plus a `summary.json`. Reports are
//! deterministic for a given `--seed` regardless of `--jobs` *and* of
//! the backend, and with `--cache-dir DIR` (or `ONIONBOTS_CACHE_DIR`)
//! previously computed parts replay from the content-addressed
//! [`sim::ResultCache`] without changing a byte of the output.
//!
//! The `serve` / `submit` / `status` subcommands front the always-on
//! simulation service ([`sim::service`]): `serve` keeps the registry,
//! cache and backend resident and speaks newline-delimited JSON to
//! concurrent clients over Unix-domain and/or TCP loopback sockets;
//! `submit` streams one job's per-part progress and renders the final
//! summary byte-identically to a one-shot run; `status` inspects the
//! daemon's job table or asks it to drain. SIGTERM/ctrl-c drain the
//! daemon gracefully: submissions are refused, in-flight parts finish
//! and flush to the cache, and the process exits 0.
//!
//! The hidden `worker` mode (`run_experiments worker`) is the subprocess
//! side of `--backend process`: it speaks the newline-delimited JSON
//! work-item protocol on stdin/stdout and is not meant to be invoked by
//! hand. `serve-worker --listen ADDR` is the same loop as a standalone
//! TCP worker host — the fleet side of `--backend remote --worker ADDR`
//! (see [`sim::remote`]).

// Deny (not forbid) so the one inventoried exception below can carry a
// scoped `#[allow]`; detlint rule D004 pins this binary to exactly one
// `unsafe` token via the inventory in detlint.toml, and every library
// crate in the workspace is `forbid(unsafe_code)`.
#![deny(unsafe_code)]

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use onionbots_bench::output::{render_summary, Format};
use onionbots_bench::Scale;
use onionbots_bench::{scenarios, service_cli, worker};
use sim::scenario_api::{parse_override, ScenarioParams};
use sim::{Backend, ResultCache, Runner, ScenarioInfo, ThreadsPerItem, WorkerCommand};

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it and
/// drains when it flips.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn handle_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag and return.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM to [`handle_shutdown_signal`] so the
/// daemon drains instead of dying mid-part. `std` exposes no signal
/// API, so this calls libc's `signal(2)` directly — the one unsafe
/// block in the workspace, confined to this binary (the libraries
/// `forbid(unsafe_code)`).
#[allow(unsafe_code)] // the single inventoried exception (detlint D004)
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, handle_shutdown_signal);
        signal(SIGTERM, handle_shutdown_signal);
    }
}

struct Options {
    list: bool,
    json: bool,
    only: Vec<String>,
    scale: Scale,
    jobs: usize,
    seed: u64,
    out: Option<String>,
    format: Format,
    overrides: Vec<(String, String)>,
    cache_dir: Option<String>,
    no_cache: bool,
    refresh: bool,
    backend: BackendChoice,
    workers: Vec<String>,
    threads_per_item: ThreadsPerItem,
    faults: Vec<String>,
    remote_deadline_ms: Option<u64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BackendChoice {
    Local,
    Process,
    Remote,
}

const USAGE: &str = "\
Usage: run_experiments [options]
       run_experiments serve|submit|status [options]

Subcommands (see each one's --help):
  serve               start the persistent simulation service daemon
  submit              send one job to a running daemon and stream results
  status              inspect a running daemon's job table / scenarios
  serve-worker        run a standalone TCP worker host for --backend remote

Options:
  --list              list registered scenarios and exit
  --json              with --list, print the listing as machine-readable
                      JSON (ids, part counts, override keys)
  --only ID[,ID...]   run only the named scenarios (repeatable)
  --scale quick|full  population scale (default: quick; env ONIONBOTS_FULL=1)
  --jobs N            workers: threads (local) or subprocesses (process)
                      (default: 1)
  --threads-per-item T
                      intra-item thread budget for graph sweeps: auto
                      (split cores across in-flight items, the default)
                      or a fixed thread count; never changes output bytes
  --backend B         execution backend: local (in-process threads,
                      default), process (run_experiments worker
                      subprocesses speaking ndjson over stdin/stdout) or
                      remote (a fleet of serve-worker hosts over TCP)
  --worker ADDR       remote worker host address, repeatable (requires
                      --backend remote; list an address twice for two
                      concurrent channels to the same host)
  --remote-deadline-ms MS
                      per-item reply deadline for --backend remote
                      (default: 60000). A host that accepts work but
                      does not answer within MS is abandoned and its
                      items re-queue on the surviving fleet
  --faults POINT=SPEC deterministic fault injection, repeatable; also
                      via env ONIONBOTS_FAULTS (';'-separated). SPEC is
                      ACTION[:MILLIS]@ORDINALS with ACTION one of
                      err|delay|hang|crash|partial and ORDINALS 1-based
                      hit counts like 2 or 3,5 or 4.. (open range).
                      Example: --faults remote.read=err@2
                      Schedules are exported to process-backend workers;
                      remote hosts arm from their own environment
  --seed N            base RNG seed (default: 2015)
  --set KEY=VALUE     scenario override, repeatable (e.g. --set steps=5)
  --out DIR           also write per-report .json/.csv files and summary.json
  --format FMT        stdout rendering: table (default), csv, json
  --cache-dir DIR     replay cached parts / store fresh ones under DIR
                      (default: env ONIONBOTS_CACHE_DIR; unset = no cache)
  --no-cache          ignore --cache-dir and ONIONBOTS_CACHE_DIR
  --refresh           re-execute cached parts and overwrite their entries
  --help              show this help
";

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        list: false,
        json: false,
        only: Vec::new(),
        scale: Scale::from_env(),
        jobs: 1,
        seed: ScenarioParams::default().seed,
        out: None,
        format: Format::Table,
        overrides: Vec::new(),
        cache_dir: None,
        no_cache: false,
        refresh: false,
        backend: BackendChoice::Local,
        workers: Vec::new(),
        threads_per_item: ThreadsPerItem::Auto,
        faults: Vec::new(),
        remote_deadline_ms: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        // Scale spellings are matched by the same helper the legacy
        // binaries use, so the two front ends cannot drift apart.
        if let Some((scale, consumed_value)) =
            Scale::match_flag(arg, args.get(i).map(String::as_str))?
        {
            options.scale = scale;
            i += usize::from(consumed_value);
            continue;
        }
        let mut value_for = |name: &str| -> Result<String, String> {
            let value = args
                .get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"));
            i += 1;
            value
        };
        match arg.as_str() {
            "--list" => options.list = true,
            "--json" => options.json = true,
            "--only" => {
                let value = value_for("--only")?;
                options.only.extend(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--jobs" => {
                let value = value_for("--jobs")?;
                options.jobs = value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value '{value}'"))?;
            }
            "--threads-per-item" => {
                let value = value_for("--threads-per-item")?;
                options.threads_per_item = match value.as_str() {
                    "auto" => ThreadsPerItem::Auto,
                    raw => raw
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .map(ThreadsPerItem::Fixed)
                        .ok_or_else(|| {
                            format!("invalid --threads-per-item value '{raw}' (auto or N >= 1)")
                        })?,
                };
            }
            "--seed" => {
                let value = value_for("--seed")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed value '{value}'"))?;
            }
            "--set" => {
                let value = value_for("--set")?;
                options.overrides.push(parse_override(&value)?);
            }
            "--backend" => {
                let value = value_for("--backend")?;
                options.backend = match value.as_str() {
                    "local" => BackendChoice::Local,
                    "process" => BackendChoice::Process,
                    "remote" => BackendChoice::Remote,
                    other => {
                        return Err(format!(
                            "unknown --backend '{other}' (local|process|remote)"
                        ))
                    }
                };
            }
            "--worker" => options.workers.push(value_for("--worker")?),
            "--remote-deadline-ms" => {
                let value = value_for("--remote-deadline-ms")?;
                options.remote_deadline_ms = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&ms| ms >= 1)
                        .ok_or_else(|| {
                            format!("invalid --remote-deadline-ms value '{value}' (MS >= 1)")
                        })?,
                );
            }
            "--faults" => {
                let value = value_for("--faults")?;
                // Validate eagerly so a typo'd point name fails the
                // invocation instead of silently never firing.
                sim::faults::parse_entry(&value)?;
                options.faults.push(value);
            }
            "--out" => options.out = Some(value_for("--out")?),
            "--cache-dir" => options.cache_dir = Some(value_for("--cache-dir")?),
            "--no-cache" => options.no_cache = true,
            "--refresh" => options.refresh = true,
            "--format" => options.format = Format::parse(&value_for("--format")?)?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            // Legacy positional scale word: only valid as the leading
            // argument (mirrors Scale::from_args).
            "full" if i == 1 => options.scale = Scale::Full,
            "quick" if i == 1 => options.scale = Scale::Quick,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if options.json && !options.list {
        return Err("--json is only valid together with --list".to_string());
    }
    if options.backend == BackendChoice::Remote && options.workers.is_empty() {
        return Err("--backend remote requires at least one --worker ADDR".to_string());
    }
    if options.backend != BackendChoice::Remote && !options.workers.is_empty() {
        return Err("--worker is only valid together with --backend remote".to_string());
    }
    if options.backend != BackendChoice::Remote && options.remote_deadline_ms.is_some() {
        return Err(
            "--remote-deadline-ms is only valid together with --backend remote".to_string(),
        );
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands are dispatched before option parsing — each has its
    // own flag set. `worker` is the hidden subprocess side of
    // --backend process; it takes no other arguments and speaks only
    // the stdin/stdout protocol.
    match args.first().map(String::as_str) {
        Some("worker") => {
            return match worker::run_worker() {
                Ok(()) => ExitCode::SUCCESS,
                Err(error) => {
                    eprintln!("worker error: {error}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("serve-worker") => return worker::serve_worker_main(&args[1..]),
        Some("serve") => {
            install_shutdown_handler();
            return service_cli::serve_main(&args[1..], &SHUTDOWN);
        }
        Some("submit") => return service_cli::submit_main(&args[1..]),
        Some("status") => return service_cli::status_main(&args[1..]),
        _ => {}
    }
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let registry = scenarios::registry();
    if options.list {
        let params = ScenarioParams::default();
        if options.json {
            // Machine-readable listing: the same ScenarioInfo frames the
            // service's List request returns, so scripts can parse one
            // format for both the offline and daemon paths.
            let infos = ScenarioInfo::collect(&registry, &params);
            println!(
                "{}",
                serde_json::to_string_pretty(&infos).expect("scenario listing serializes")
            );
            return ExitCode::SUCCESS;
        }
        println!("{} registered scenarios:\n", registry.len());
        for scenario in registry.iter() {
            println!(
                "  {:<24} {:>2} part(s)  {}",
                scenario.id(),
                scenario.parts(&params),
                scenario.title()
            );
            // Declared override keys make --set discoverable; a scenario
            // without declared keys accepts (and is fingerprinted by)
            // every override.
            match scenario.override_keys() {
                Some(keys) => println!("  {:<24} --set keys: {}", "", keys.join(", ")),
                None => println!("  {:<24} --set keys: (undeclared)", ""),
            }
        }
        return ExitCode::SUCCESS;
    }

    let selected = match registry.select(&options.only) {
        Ok(selected) => selected,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(2);
        }
    };

    let mut params = ScenarioParams {
        full_scale: options.scale.is_full(),
        seed: options.seed,
        ..ScenarioParams::default()
    };
    // Repeated --set flags: later flags win, matching every other option.
    for (key, value) in options.overrides {
        params.overrides.insert(key, value);
    }
    eprintln!(
        "running {} scenario(s) at {:?} scale with {} job(s), seed {}, {} backend, {} thread(s)/item",
        selected.len(),
        options.scale,
        options.jobs,
        params.seed,
        match options.backend {
            BackendChoice::Local => "local",
            BackendChoice::Process => "process",
            BackendChoice::Remote => "remote",
        },
        match options.threads_per_item {
            ThreadsPerItem::Auto => "auto".to_string(),
            ThreadsPerItem::Fixed(n) => n.to_string(),
            ThreadsPerItem::Sequential => "1".to_string(),
        }
    );
    let cache_dir = match (&options.no_cache, &options.cache_dir) {
        (true, _) => None,
        (false, Some(dir)) => Some(dir.clone()),
        (false, None) => std::env::var("ONIONBOTS_CACHE_DIR")
            .ok()
            .filter(|dir| !dir.is_empty()),
    };
    // The combined fault schedule: the environment's entries first, then
    // every --faults flag. Arming is all-or-nothing — a typo anywhere
    // fails the invocation rather than running with half a schedule.
    let fault_schedule = {
        let mut entries: Vec<String> = std::env::var(sim::FAULTS_ENV)
            .ok()
            .filter(|schedule| !schedule.is_empty())
            .into_iter()
            .collect();
        entries.extend(options.faults.iter().cloned());
        entries.join(";")
    };
    if !fault_schedule.is_empty() {
        if let Err(error) = sim::faults::arm_schedule(&fault_schedule) {
            eprintln!("error: invalid fault schedule: {error}");
            return ExitCode::from(2);
        }
        eprintln!("fault injection armed: {fault_schedule}");
    }
    let backend = match options.backend {
        BackendChoice::Local => Backend::Local,
        BackendChoice::Process => {
            // Workers are this very binary re-invoked in worker mode, so
            // parent and workers can never disagree about the registry.
            let exe = match std::env::current_exe() {
                Ok(exe) => exe,
                Err(error) => {
                    eprintln!("error: cannot locate own executable for worker mode: {error}");
                    return ExitCode::FAILURE;
                }
            };
            // Worker subprocesses inherit the full schedule, so
            // worker-side failpoints (worker.item) fire in them with
            // their own per-process hit counters.
            let mut command = WorkerCommand::new(exe).arg("worker");
            if !fault_schedule.is_empty() {
                command = command.env(sim::FAULTS_ENV, &fault_schedule);
            }
            Backend::Process(command)
        }
        BackendChoice::Remote => Backend::Remote(options.workers.clone()),
    };
    let mut runner = Runner::new(params)
        .jobs(options.jobs)
        .backend(backend)
        .threads_per_item(options.threads_per_item);
    if let Some(millis) = options.remote_deadline_ms {
        runner = runner.remote_deadline_ms(millis);
    }
    let mut cache_active = false;
    if let Some(dir) = cache_dir {
        // An unusable cache location degrades to an uncached run: caching
        // is an accelerator, never a prerequisite.
        match ResultCache::open(&dir) {
            Ok(cache) => {
                runner = runner.with_cache(cache).refresh(options.refresh);
                cache_active = true;
            }
            Err(error) => {
                eprintln!("warning: cache dir {dir} is unusable ({error}); running uncached");
            }
        }
    }
    if options.refresh && !cache_active {
        eprintln!("warning: --refresh has no effect without an active cache");
    }
    let started = Instant::now();
    let summary = match runner.try_run_with_stats(&selected) {
        Ok((summary, _stats)) => summary,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();

    if let Err(message) = render_summary(&summary, options.format, options.out.as_deref()) {
        eprintln!("error: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "completed {} scenario(s), {} report(s) in {:.2}s",
        summary.outcomes.len(),
        summary.report_count(),
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}
