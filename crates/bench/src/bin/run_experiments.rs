//! Unified experiment runner over the scenario registry.
//!
//! ```text
//! run_experiments --list
//! run_experiments --only fig4,fig7 --scale full --jobs 8 --out results/
//! ```
//!
//! Selected scenarios (default: all) run through the parallel
//! [`sim::Runner`]; results render to stdout (`--format table|csv|json`)
//! and, with `--out DIR`, to per-report `.json`/`.csv` files plus a
//! `summary.json`. Reports are deterministic for a given `--seed`
//! regardless of `--jobs`.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use onionbots_bench::scenarios;
use onionbots_bench::Scale;
use sim::experiment::{CsvDirSink, JsonDirSink, ReportSink, TableSink};
use sim::scenario_api::ScenarioParams;
use sim::Runner;

struct Options {
    list: bool,
    only: Vec<String>,
    scale: Scale,
    jobs: usize,
    seed: u64,
    out: Option<String>,
    format: Format,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Csv,
    Json,
}

const USAGE: &str = "\
Usage: run_experiments [options]

Options:
  --list              list registered scenarios and exit
  --only ID[,ID...]   run only the named scenarios (repeatable)
  --scale quick|full  population scale (default: quick; env ONIONBOTS_FULL=1)
  --jobs N            worker threads (default: 1)
  --seed N            base RNG seed (default: 2015)
  --out DIR           also write per-report .json/.csv files and summary.json
  --format FMT        stdout rendering: table (default), csv, json
  --help              show this help
";

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        list: false,
        only: Vec::new(),
        scale: Scale::from_env(),
        jobs: 1,
        seed: ScenarioParams::default().seed,
        out: None,
        format: Format::Table,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        // Scale spellings are matched by the same helper the legacy
        // binaries use, so the two front ends cannot drift apart.
        if let Some((scale, consumed_value)) =
            Scale::match_flag(arg, args.get(i).map(String::as_str))?
        {
            options.scale = scale;
            i += usize::from(consumed_value);
            continue;
        }
        let mut value_for = |name: &str| -> Result<String, String> {
            let value = args
                .get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"));
            i += 1;
            value
        };
        match arg.as_str() {
            "--list" => options.list = true,
            "--only" => {
                let value = value_for("--only")?;
                options.only.extend(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--jobs" => {
                let value = value_for("--jobs")?;
                options.jobs = value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value '{value}'"))?;
            }
            "--seed" => {
                let value = value_for("--seed")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed value '{value}'"))?;
            }
            "--out" => options.out = Some(value_for("--out")?),
            "--format" => {
                let value = value_for("--format")?;
                options.format = match value.as_str() {
                    "table" => Format::Table,
                    "csv" => Format::Csv,
                    "json" => Format::Json,
                    other => return Err(format!("unknown --format '{other}'")),
                };
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            // Legacy positional scale word: only valid as the leading
            // argument (mirrors Scale::from_args).
            "full" if i == 1 => options.scale = Scale::Full,
            "quick" if i == 1 => options.scale = Scale::Quick,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let registry = scenarios::registry();
    if options.list {
        let params = ScenarioParams::default();
        println!("{} registered scenarios:\n", registry.len());
        for scenario in registry.iter() {
            println!(
                "  {:<24} {:>2} part(s)  {}",
                scenario.id(),
                scenario.parts(&params),
                scenario.title()
            );
        }
        return ExitCode::SUCCESS;
    }

    let selected = match registry.select(&options.only) {
        Ok(selected) => selected,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::from(2);
        }
    };

    let params = ScenarioParams {
        full_scale: options.scale.is_full(),
        seed: options.seed,
        ..ScenarioParams::default()
    };
    eprintln!(
        "running {} scenario(s) at {:?} scale with {} job(s), seed {}",
        selected.len(),
        options.scale,
        options.jobs,
        params.seed
    );
    let started = Instant::now();
    let summary = Runner::new(params).jobs(options.jobs).run(&selected);
    let elapsed = started.elapsed();

    let mut sinks: Vec<Box<dyn ReportSink>> = Vec::new();
    match options.format {
        Format::Table => sinks.push(Box::new(TableSink::new(std::io::stdout()))),
        Format::Csv | Format::Json => {}
    }
    if let Some(dir) = &options.out {
        match (JsonDirSink::new(dir), CsvDirSink::new(dir)) {
            (Ok(json), Ok(csv)) => {
                sinks.push(Box::new(json));
                sinks.push(Box::new(csv));
            }
            (Err(error), _) | (_, Err(error)) => {
                eprintln!("error: cannot create output directory {dir}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut stdout = std::io::stdout();
    for outcome in &summary.outcomes {
        for report in &outcome.reports {
            match options.format {
                Format::Csv => {
                    let _ = writeln!(stdout, "# {}\n{}", report.id, report.to_csv());
                }
                Format::Json => {
                    let _ = writeln!(stdout, "{}", report.to_json());
                }
                Format::Table => {}
            }
            for sink in &mut sinks {
                if let Err(error) = sink.write_report(&outcome.scenario_id, report) {
                    eprintln!("error: writing report {}: {error}", report.id);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    for sink in &mut sinks {
        if let Err(error) = sink.finish() {
            eprintln!("error: flushing output: {error}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &options.out {
        let path = std::path::Path::new(dir).join("summary.json");
        if let Err(error) = std::fs::write(&path, summary.to_json()) {
            eprintln!("error: writing {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "completed {} scenario(s), {} report(s) in {:.2}s",
        summary.outcomes.len(),
        summary.report_count(),
        elapsed.as_secs_f64()
    );
    ExitCode::SUCCESS
}
