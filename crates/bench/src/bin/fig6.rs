//! Figure 6: number of simultaneous node deletions needed to partition a
//! 10-regular graph, for sizes n = 1000 .. 15000. The paper reports the
//! threshold tracks roughly 40% of the nodes (the `f(x) = 0.4x` reference
//! line).

use onionbots_bench::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::scenario::partition_threshold;
use sim::{ExperimentReport, Series};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 6 — simultaneous deletions needed to partition a 10-regular graph\n");

    let paper_sizes: Vec<usize> = (1..=15).map(|i| i * 1000).collect();
    let mut x = Vec::new();
    let mut measured = Vec::new();
    let mut reference = Vec::new();
    for paper_n in paper_sizes {
        let n = scale.population(paper_n);
        let mut rng = StdRng::seed_from_u64(6000 + paper_n as u64);
        let threshold = partition_threshold(n, 10, (n / 100).max(1), &mut rng);
        x.push(n as f64);
        measured.push(threshold.deletions_to_partition as f64);
        reference.push(0.4 * n as f64);
        println!(
            "n = {:>6}: partitioned after {:>6} deletions ({:.1}% of nodes)",
            n,
            threshold.deletions_to_partition,
            threshold.fraction() * 100.0
        );
    }

    let mut report = ExperimentReport::new(
        "fig6",
        "Deletions needed to partition (10-regular)",
        "nodes",
        "nodes deleted",
    );
    report.push_series(Series::new("Graph", x.clone(), measured));
    report.push_series(Series::new("f(x) = 0.4x", x, reference));
    println!("\n{}", report.to_table());
}
