//! Figure 6 (thin wrapper): delegates to the `fig6` registry scenario.
//! Pass `--scale full` (or legacy `full`) for the paper's population.

fn main() {
    onionbots_bench::scenarios::run_legacy("fig6");
}
