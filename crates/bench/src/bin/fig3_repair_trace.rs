//! Figure 3: step-by-step trace of the self-repair process on a 3-regular
//! 12-node graph (the paper's worked example). Prints the edges created by
//! each repair as nodes are deleted one at a time.

use onion_graph::components::component_count;
use onion_graph::graph::Graph;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    // A 3-regular circulant graph on 12 nodes: i ~ i±1 and i ~ i+6.
    let (mut g, ids) = Graph::with_nodes(12);
    for i in 0..12usize {
        g.add_edge(ids[i], ids[(i + 1) % 12]);
        g.add_edge(ids[i], ids[(i + 6) % 12]);
    }
    let mut overlay = DdsrOverlay::from_graph(g, DdsrConfig::without_pruning(3));

    println!("# Figure 3 — self-repair trace on a 3-regular graph with 12 nodes\n");
    println!(
        "step 1: {} nodes, {} edges, {} component(s)",
        overlay.node_count(),
        overlay.graph().edge_count(),
        component_count(overlay.graph())
    );

    // Delete the same kind of sequence the figure shows (eight steps).
    let deletions = [7usize, 11, 8, 10, 9, 1, 4, 5];
    for (step, &victim) in deletions.iter().enumerate() {
        let neighbors = overlay.peers(ids[victim]).unwrap_or_default();
        let edges_before = overlay.graph().edge_count();
        overlay.remove_node_with_repair(ids[victim], &mut rng);
        let mut new_edges: Vec<String> = Vec::new();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in neighbors.iter().skip(i + 1) {
                if overlay.graph().has_edge(a, b) {
                    new_edges.push(format!("({}, {})", a.0, b.0));
                }
            }
        }
        println!(
            "step {}: delete node {:>2} -> repair links among {:?}: {} | nodes={} edges={} (was {}) components={}",
            step + 2,
            victim,
            neighbors.iter().map(|n| n.0).collect::<Vec<_>>(),
            if new_edges.is_empty() {
                "none needed".to_string()
            } else {
                new_edges.join(" ")
            },
            overlay.node_count(),
            overlay.graph().edge_count(),
            edges_before,
            component_count(overlay.graph())
        );
    }
    println!(
        "\nfinal graph remains a single component: {}",
        component_count(overlay.graph()) == 1
    );
}
