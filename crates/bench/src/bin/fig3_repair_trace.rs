//! Figure 3 (thin wrapper): delegates to the `fig3` registry scenario.
//! See `run_experiments` for the full CLI.

fn main() {
    onionbots_bench::scenarios::run_legacy("fig3");
}
