//! Figure 7: the SOAP (soaping) attack — clones of a compromised node
//! gradually surround each bot until the botnet is partitioned into
//! contained nodes. Prints the containment trace and the final outcome, plus
//! an ablation with the proof-of-work / rate-limiting counter-defenses.

use mitigation::defenses::{PeeringRateLimiter, PowChallenge};
use mitigation::soap::{SoapAttack, SoapConfig};
use onionbots_bench::Scale;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{ExperimentReport, Series};

fn main() {
    let scale = Scale::from_env();
    let n = scale.population(1000);
    let k = 10usize;
    let mut rng = StdRng::seed_from_u64(7);

    println!("# Figure 7 — SOAP containment of a basic OnionBot (n = {n}, k = {k})\n");
    let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
    let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
    let outcome = attack.run(&mut overlay, &mut rng);

    let mut report = ExperimentReport::new(
        "fig7",
        "SOAP campaign progress",
        "iteration",
        "bots",
    );
    report.push_series(Series::new(
        "contained bots",
        outcome.trace.iter().map(|p| p.iteration as f64).collect(),
        outcome.trace.iter().map(|p| p.contained_bots as f64).collect(),
    ));
    report.push_series(Series::new(
        "discovered bots",
        outcome.trace.iter().map(|p| p.iteration as f64).collect(),
        outcome.trace.iter().map(|p| p.discovered_bots as f64).collect(),
    ));
    report.push_series(Series::new(
        "clones created",
        outcome.trace.iter().map(|p| p.iteration as f64).collect(),
        outcome.trace.iter().map(|p| p.clones_created as f64).collect(),
    ));
    println!("{}", report.to_table());
    println!(
        "botnet neutralized: {} (iterations = {}, clones = {})\n",
        outcome.neutralized, outcome.iterations, outcome.clones_created
    );

    // Ablation: the paper's anticipated counter-defenses raise the cost of
    // each clone acceptance.
    println!("## Counter-defense costs (§VII-A)\n");
    let limiter = PeeringRateLimiter {
        base_delay_secs: 60,
        per_peer_delay_secs: 300,
    };
    let clones_per_bot = (outcome.clones_created as f64 / outcome.trace.last().map_or(1.0, |p| p.discovered_bots.max(1) as f64)).ceil() as usize;
    println!(
        "rate limiting: accepting {clones_per_bot} clones at one bot costs {} simulated hours (vs {} hours for its initial {k} rallies)",
        limiter.total_delay(k, clones_per_bot) / 3600,
        limiter.total_delay(0, k) / 3600
    );
    for difficulty in [8u32, 12, 16] {
        let challenge = PowChallenge {
            challenge: b"peer-with-me".to_vec(),
            difficulty_bits: difficulty,
        };
        let cost = challenge.solve(u64::MAX >> 16).map(|(_, c)| c).unwrap_or(0);
        println!(
            "proof of work at {difficulty} bits: ~{cost} hash evaluations per clone, ~{} per contained bot",
            cost * clones_per_bot as u64
        );
    }
}
