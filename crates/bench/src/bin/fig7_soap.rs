//! Figure 7 (thin wrapper): delegates to the `fig7` registry scenario.
//! Pass `--scale full` (or legacy `full`) for the paper's population.

fn main() {
    onionbots_bench::scenarios::run_legacy("fig7");
}
