//! Figure 8: the SuperOnion construction (n = 5 hosts, m = 3 virtual nodes,
//! i = 2 peers) and its recovery behaviour when virtual nodes are soaped.

use mitigation::superonion::{HostId, SuperOnion, SuperOnionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(8);
    let config = SuperOnionConfig::figure8();
    let mut so = SuperOnion::build(config, &mut rng);

    println!(
        "# Figure 8 — SuperOnion construction with n = {}, m = {}, i = {}\n",
        config.hosts, config.virtual_per_host, config.peers_per_virtual
    );
    println!(
        "virtual nodes: {}, edges: {}",
        so.virtual_node_count(),
        so.graph().edge_count()
    );
    for h in 0..config.hosts {
        let host = HostId(h);
        let probe = so.probe(host);
        println!(
            "host {h}: virtual nodes {:?}, probe reachable {}/{}, gossip messages {}",
            so.virtual_nodes(host).iter().map(|v| v.0).collect::<Vec<_>>(),
            probe.reachable.len(),
            config.virtual_per_host,
            probe.messages
        );
    }

    println!("\n## Soaping campaign against host 0's virtual nodes\n");
    let host = HostId(0);
    let virtuals = so.virtual_nodes(host);
    for (i, &victim) in virtuals.iter().enumerate() {
        so.soap_virtual_node(victim);
        let probe = so.probe(host);
        println!(
            "after soaping {} virtual node(s): reachable {}/{} -> host operational: {}",
            i + 1,
            probe.reachable.len(),
            config.virtual_per_host,
            so.host_operational(host)
        );
    }

    println!("\n## Recovery (re-bootstrap of soaped virtual nodes)\n");
    let replaced = so.recover(host, &mut rng);
    let probe = so.probe(host);
    println!(
        "host 0 replaced {replaced} virtual node(s); probe now reaches {}/{} -> operational: {}",
        probe.reachable.len(),
        config.virtual_per_host,
        so.host_operational(host)
    );
}
