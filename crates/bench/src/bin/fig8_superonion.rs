//! Figure 8 (thin wrapper): delegates to the `fig8` registry scenario.

fn main() {
    onionbots_bench::scenarios::run_legacy("fig8");
}
