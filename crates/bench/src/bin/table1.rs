//! Table I: cryptographic use in different botnet families, plus the
//! OnionBot design row for contrast.

use botnet::crypto_catalog::{onionbot_row, render_table, table_one};

fn main() {
    println!("# Table I — cryptographic use in different botnets\n");
    println!("{}", render_table(&table_one()));
    println!("# With the OnionBot design for comparison\n");
    let mut rows = table_one();
    rows.push(onionbot_row());
    println!("{}", render_table(&rows));
}
