//! Table I (thin wrapper): delegates to the `table1` registry scenario.

fn main() {
    onionbots_bench::scenarios::run_legacy("table1");
}
