//! Figure 4: average closeness centrality (4a/4b) and degree centrality
//! (4c/4d) of a k-regular overlay (k = 5, 10, 15) under 30% node deletions,
//! with and without pruning.

use onionbots_bench::Scale;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::scenario::{gradual_takedown, TakedownMode, TakedownParams};
use sim::{ExperimentReport, Series};

fn run_variant(
    n: usize,
    k: usize,
    pruning: bool,
    samples: usize,
    rng: &mut StdRng,
) -> (Series, Series) {
    let config = if pruning {
        DdsrConfig::for_degree(k)
    } else {
        DdsrConfig::without_pruning(k)
    };
    let (mut overlay, ids) = DdsrOverlay::new_regular(n, k, config, rng);
    let deletions = (n as f64 * 0.3) as usize;
    let params = TakedownParams {
        deletions,
        sample_every: (deletions / 15).max(1),
        metric_samples: samples,
    };
    let trace = gradual_takedown(&mut overlay, &ids, TakedownMode::SelfRepairing, params, rng);
    let x: Vec<f64> = trace.iter().map(|s| s.nodes_deleted as f64).collect();
    let closeness = Series::new(
        format!("deg = {k}"),
        x.clone(),
        trace.iter().map(|s| s.closeness_centrality).collect(),
    );
    let degree = Series::new(
        format!("deg = {k}"),
        x,
        trace.iter().map(|s| s.degree_centrality).collect(),
    );
    (closeness, degree)
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.population(5000);
    let samples = scale.metric_samples();
    println!("# Figure 4 — centrality under 30% deletions, n = {n} (paper: 5000)\n");

    for (pruning, closeness_id, degree_id) in [
        (false, "fig4a", "fig4c"),
        (true, "fig4b", "fig4d"),
    ] {
        let mode = if pruning { "with pruning" } else { "without pruning" };
        let mut closeness_report = ExperimentReport::new(
            closeness_id,
            format!("Average closeness centrality ({mode})"),
            "nodes deleted",
            "closeness centrality",
        );
        let mut degree_report = ExperimentReport::new(
            degree_id,
            format!("Average degree centrality ({mode})"),
            "nodes deleted",
            "degree centrality",
        );
        for k in [5usize, 10, 15] {
            let mut rng = StdRng::seed_from_u64(4000 + k as u64 + u64::from(pruning));
            let (closeness, degree) = run_variant(n, k, pruning, samples, &mut rng);
            closeness_report.push_series(closeness);
            degree_report.push_series(degree);
        }
        println!("{}", closeness_report.to_table());
        println!("{}", degree_report.to_table());
    }
}
