//! NoN-lookahead ablation (thin wrapper): delegates to the
//! `ablation-non` registry scenario.

fn main() {
    onionbots_bench::scenarios::run_legacy("ablation-non");
}
