//! Ablation: the value of Neighbors-of-Neighbor lookahead (§IV-C).
//!
//! The paper builds the overlay on NoN knowledge and cites Manku et al.'s
//! result that NoN greedy routing is asymptotically optimal. This ablation
//! compares plain greedy routing (one-hop knowledge) against NoN greedy
//! routing (two-hop lookahead) on the same overlays: delivery rate, mean hop
//! count, and stretch versus the true shortest path.

use onion_graph::generators::random_regular;
use onionbots_bench::Scale;
use onionbots_core::routing::{greedy_route, non_greedy_route, shortest_path_hops};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use sim::{ExperimentReport, Series};

fn main() {
    let scale = Scale::from_env();
    let n = scale.population(2000);
    let trials = 200usize;
    println!("# Ablation — greedy routing with and without NoN lookahead (n = {n})\n");

    let degrees = [4usize, 6, 8, 10, 15];
    let mut delivery_greedy = Vec::new();
    let mut delivery_non = Vec::new();
    let mut stretch_greedy = Vec::new();
    let mut stretch_non = Vec::new();

    for &k in &degrees {
        let mut rng = StdRng::seed_from_u64(9000 + k as u64);
        let (graph, ids) = random_regular(n, k, &mut rng);
        let mut ok_greedy = 0usize;
        let mut ok_non = 0usize;
        let mut sum_stretch_greedy = 0.0;
        let mut sum_stretch_non = 0.0;
        let mut stretch_samples_greedy = 0usize;
        let mut stretch_samples_non = 0usize;
        for _ in 0..trials {
            let src = *ids.choose(&mut rng).expect("non-empty");
            let dst = *ids.choose(&mut rng).expect("non-empty");
            if src == dst {
                continue;
            }
            let Some(optimal) = shortest_path_hops(&graph, src, dst) else {
                continue;
            };
            let g = greedy_route(&graph, src, dst, n);
            let non = non_greedy_route(&graph, src, dst, n);
            if g.delivered {
                ok_greedy += 1;
                sum_stretch_greedy += g.hops() as f64 / optimal.max(1) as f64;
                stretch_samples_greedy += 1;
            }
            if non.delivered {
                ok_non += 1;
                sum_stretch_non += non.hops() as f64 / optimal.max(1) as f64;
                stretch_samples_non += 1;
            }
        }
        delivery_greedy.push(ok_greedy as f64 / trials as f64);
        delivery_non.push(ok_non as f64 / trials as f64);
        stretch_greedy.push(sum_stretch_greedy / stretch_samples_greedy.max(1) as f64);
        stretch_non.push(sum_stretch_non / stretch_samples_non.max(1) as f64);
    }

    let x: Vec<f64> = degrees.iter().map(|&k| k as f64).collect();
    let mut delivery = ExperimentReport::new(
        "ablation-non-delivery",
        "Delivery rate of greedy routing",
        "degree",
        "delivery rate",
    );
    delivery.push_series(Series::new("greedy (1-hop)", x.clone(), delivery_greedy));
    delivery.push_series(Series::new("NoN greedy (2-hop)", x.clone(), delivery_non));
    println!("{}", delivery.to_table());

    let mut stretch = ExperimentReport::new(
        "ablation-non-stretch",
        "Path stretch vs. shortest path (delivered routes)",
        "degree",
        "stretch",
    );
    stretch.push_series(Series::new("greedy (1-hop)", x.clone(), stretch_greedy));
    stretch.push_series(Series::new("NoN greedy (2-hop)", x, stretch_non));
    println!("{}", stretch.to_table());
}
