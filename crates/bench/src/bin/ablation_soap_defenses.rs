//! Defended-SOAP ablation (thin wrapper): delegates to the
//! `ablation-soap-defenses` registry scenario.

fn main() {
    onionbots_bench::scenarios::run_legacy("ablation-soap-defenses");
}
