//! Ablation: SOAP versus the §VII-A counter-defenses (proof of work and
//! rate limiting), quantifying the resilience/recoverability trade-off the
//! paper leaves open.

use mitigation::defended_soap::{run_defended_soap, DefenseConfig};
use mitigation::defenses::PeeringRateLimiter;
use mitigation::soap::SoapConfig;
use onionbots_bench::Scale;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let n = scale.population(1000);
    let k = 10usize;
    println!("# Ablation — SOAP against defended OnionBots (n = {n}, k = {k})\n");
    println!(
        "{:<28} {:>12} {:>14} {:>18} {:>16} {:>20}",
        "defense", "neutralized", "clones", "defender hashes", "defender wait(h)", "repair delay(s)/takedown"
    );

    let configs = [
        ("none (basic OnionBot)", DefenseConfig::none()),
        ("rate limiting only", DefenseConfig {
            pow_base_bits: 0,
            rate_limiter: PeeringRateLimiter {
                base_delay_secs: 60,
                per_peer_delay_secs: 300,
            },
        }),
        ("PoW 10 bits only", DefenseConfig {
            pow_base_bits: 10,
            rate_limiter: PeeringRateLimiter {
                base_delay_secs: 0,
                per_peer_delay_secs: 0,
            },
        }),
        ("PoW 10 bits + rate limit", DefenseConfig::standard()),
        ("PoW 16 bits + rate limit", DefenseConfig {
            pow_base_bits: 16,
            ..DefenseConfig::standard()
        }),
    ];

    for (label, defense) in configs {
        let mut rng = StdRng::seed_from_u64(1100);
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
        let outcome = run_defended_soap(&mut overlay, ids[0], SoapConfig::default(), defense, &mut rng);
        println!(
            "{:<28} {:>12} {:>14} {:>18} {:>16.1} {:>20}",
            label,
            outcome.soap.neutralized,
            outcome.soap.clones_created,
            outcome.defender_hash_evaluations,
            outcome.defender_wait_secs as f64 / 3600.0,
            outcome.repair_delay_secs_per_takedown
        );
    }

    println!(
        "\nTake-away: basic PoW and rate limiting do not prevent neutralization of the basic\n\
         design; they multiply the defender's cost while also taxing the botnet's own repair,\n\
         which is the recoverability/resilience trade-off §VII-A identifies."
    );
}
