//! # onionbots-bench
//!
//! Figure/table-regeneration harness for the OnionBots (DSN 2015)
//! reproduction.
//!
//! Every paper figure/table/ablation is a registered
//! [`sim::Scenario`](sim::scenario_api::Scenario) in [`scenarios`]; the
//! `run_experiments` binary lists, selects and executes them in parallel
//! (`run_experiments --list`, `run_experiments --only fig4,fig7 --scale
//! full --jobs 8 --out results/`). Scenario knobs are overridable with
//! repeated `--set KEY=VALUE` flags, and `--cache-dir DIR` (or
//! `ONIONBOTS_CACHE_DIR`) replays previously computed parts from the
//! content-addressed [`sim::ResultCache`] with byte-identical output —
//! see `EXPERIMENTS.md` at the repository root for the full walkthrough.
//! With `--backend process` the run fans its work items out to
//! `run_experiments worker` subprocesses (the [`worker`] module) over the
//! newline-delimited JSON protocol in [`sim::executor`], with the same
//! byte-identical summaries.
//! `run_experiments serve` keeps the whole stack resident as a daemon
//! ([`service_cli`], over [`sim::service`]): clients `submit` jobs and
//! `status`-poll over Unix-domain or TCP loopback sockets, per-part
//! progress streams back as NDJSON frames, and every job shares one
//! result cache. The [`output`] module renders a `RunSummary`
//! identically for the one-shot and daemon paths.
//! The per-figure binaries in `src/bin/` are thin wrappers that delegate
//! to the same registry, and the Criterion benchmarks in `benches/` cover
//! the micro-level costs (repair, routing, metrics, descriptors, crypto,
//! SOAP iterations, event-queue throughput).
//!
//! Scenarios default to a scaled-down population so that a full
//! regeneration run finishes in minutes on a laptop; pass `--scale full`
//! to `run_experiments` (or `full` to a legacy figure binary, or set
//! `ONIONBOTS_FULL=1`) to run at the paper's scale (5000/15000 nodes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod output;
pub mod scenarios;
pub mod service_cli;
pub mod worker;

use sim::scenario_api::ScenarioParams;

/// Experiment scale selection shared by the scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down population for quick runs (default).
    Quick,
    /// The paper's population (5000 / 15000 nodes).
    Full,
}

impl Scale {
    /// Reads the scale from the environment only (`ONIONBOTS_FULL=1` or
    /// `=true`). Command-line flags are parsed explicitly via
    /// [`Scale::from_args`]; this no longer scans `std::env::args()`, which
    /// silently mis-triggered on unrelated flags once binaries took real
    /// options.
    pub fn from_env() -> Self {
        let env_full = std::env::var("ONIONBOTS_FULL").is_ok_and(|v| v == "1" || v == "true");
        if env_full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Parses the scale from explicit command-line arguments, falling back
    /// to the environment ([`Scale::from_env`]).
    ///
    /// Recognized forms: `--scale full|quick` / `--scale=full|quick` /
    /// `--full` / `--quick` anywhere, plus the legacy positional
    /// `full`/`quick` the original figure binaries documented — but only
    /// as the *first* argument, so values of unrelated flags (e.g.
    /// `--out full`) can never flip the scale. The last explicit option
    /// wins.
    ///
    /// # Errors
    /// Returns a message when a `--scale` value is not `full`/`quick`
    /// rather than silently running at the wrong scale.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut scale = match args.first().map(String::as_str) {
            Some("full") => Some(Scale::Full),
            Some("quick") => Some(Scale::Quick),
            _ => None,
        };
        let mut i = 0;
        while i < args.len() {
            let value = args.get(i + 1).map(String::as_str);
            if let Some((parsed, consumed_value)) = Scale::match_flag(&args[i], value)? {
                scale = Some(parsed);
                i += usize::from(consumed_value);
            }
            i += 1;
        }
        Ok(scale.unwrap_or_else(Scale::from_env))
    }

    /// Interprets one argument as a scale flag, shared by every CLI front
    /// end so the spellings cannot drift apart. `value` is the following
    /// argument (consumed only for the space-separated `--scale VALUE`
    /// form, signalled by the returned bool); non-scale arguments return
    /// `Ok(None)`.
    ///
    /// # Errors
    /// Returns a message for a missing or unparseable `--scale` value.
    pub fn match_flag(arg: &str, value: Option<&str>) -> Result<Option<(Self, bool)>, String> {
        let parse_strict = |value: &str| -> Result<Scale, String> {
            Scale::parse(value).ok_or_else(|| format!("unknown --scale '{value}' (quick|full)"))
        };
        match arg {
            "--full" => Ok(Some((Scale::Full, false))),
            "--quick" => Ok(Some((Scale::Quick, false))),
            "--scale" => {
                let value = value.ok_or_else(|| "--scale requires a value".to_string())?;
                Ok(Some((parse_strict(value)?, true)))
            }
            other => match other.strip_prefix("--scale=") {
                Some(inline) => Ok(Some((parse_strict(inline)?, false))),
                None => Ok(None),
            },
        }
    }

    /// Parses `"full"` / `"quick"` (case-insensitive).
    pub fn parse(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// The scale a scenario run was configured with
    /// ([`ScenarioParams::full_scale`]).
    pub fn from_params(params: &ScenarioParams) -> Self {
        if params.full_scale {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Whether this is the paper-scale configuration.
    pub fn is_full(self) -> bool {
        self == Scale::Full
    }

    /// Scales a paper-sized population down for quick runs (divides by 10,
    /// with a floor).
    pub fn population(self, paper_size: usize) -> usize {
        match self {
            Scale::Full => paper_size,
            Scale::Quick => (paper_size / 10).max(100),
        }
    }

    /// Number of BFS sources for sampled metrics.
    pub fn metric_samples(self) -> usize {
        match self {
            Scale::Full => 200,
            Scale::Quick => 60,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn quick_scale_shrinks_paper_populations() {
        assert_eq!(Scale::Quick.population(5000), 500);
        assert_eq!(Scale::Quick.population(15000), 1500);
        assert_eq!(Scale::Quick.population(500), 100);
        assert_eq!(Scale::Full.population(5000), 5000);
    }

    #[test]
    fn metric_samples_differ_by_scale() {
        assert!(Scale::Full.metric_samples() > Scale::Quick.metric_samples());
    }

    fn parsed(list: &[&str]) -> Scale {
        Scale::from_args(&args(list)).unwrap()
    }

    #[test]
    fn from_args_parses_explicit_forms() {
        assert_eq!(parsed(&["--scale", "full"]), Scale::Full);
        assert_eq!(parsed(&["--scale=full"]), Scale::Full);
        assert_eq!(parsed(&["--full"]), Scale::Full);
        assert_eq!(parsed(&["full"]), Scale::Full);
        assert_eq!(parsed(&["--scale", "quick"]), Scale::Quick);
        // Later options override earlier ones, in either direction.
        assert_eq!(parsed(&["--full", "--scale", "quick"]), Scale::Quick);
        assert_eq!(parsed(&["--scale", "full", "--quick"]), Scale::Quick);
        assert_eq!(parsed(&["--scale=quick", "--full"]), Scale::Full);
    }

    #[test]
    fn from_args_rejects_invalid_scale_values() {
        // A typo must error rather than silently run at the wrong scale.
        assert!(Scale::from_args(&args(&["--scale", "ful"])).is_err());
        assert!(Scale::from_args(&args(&["--scale=Full-size"])).is_err());
        // ... and so must a trailing --scale with its value missing.
        assert!(Scale::from_args(&args(&["--scale"])).is_err());
        assert!(Scale::from_args(&args(&["--jobs", "2", "--scale"])).is_err());
    }

    #[test]
    fn from_args_ignores_unrelated_flags() {
        // Regression: the old `from_env` scanned raw `std::env::args()` for
        // the substring "full", so flags like `--out fullresults` or a
        // binary path containing "full" flipped the scale.
        assert_eq!(
            parsed(&["--out", "fullresults", "--jobs", "8"]),
            Scale::Quick
        );
        assert_eq!(parsed(&["--only", "fig4"]), Scale::Quick);
    }

    #[test]
    fn bare_scale_words_only_count_in_first_position() {
        // Regression: `--out full` must not flip the scale just because a
        // flag value happens to be the word "full"; the legacy positional
        // form is only honored as the leading argument.
        assert_eq!(parsed(&["--out", "full"]), Scale::Quick);
        assert_eq!(parsed(&["--only", "full"]), Scale::Quick);
        assert_eq!(parsed(&["full", "--jobs", "2"]), Scale::Full);
        assert_eq!(parsed(&["quick"]), Scale::Quick);
    }

    #[test]
    fn from_params_maps_the_flag() {
        let mut params = sim::scenario_api::ScenarioParams::default();
        assert_eq!(Scale::from_params(&params), Scale::Quick);
        params.full_scale = true;
        assert_eq!(Scale::from_params(&params), Scale::Full);
    }
}
