//! # onionbots-bench
//!
//! Figure/table-regeneration harness for the OnionBots (DSN 2015)
//! reproduction. Each binary in `src/bin/` regenerates one table or figure
//! from the paper's evaluation (see `DESIGN.md` for the experiment index);
//! the Criterion benchmarks in `benches/` cover the micro-level costs
//! (repair, routing, metrics, descriptors, crypto, SOAP iterations).
//!
//! The binaries default to a scaled-down population so that a full
//! regeneration run finishes in minutes on a laptop; pass `full` as the
//! first CLI argument (or set `ONIONBOTS_FULL=1`) to run at the paper's
//! scale (5000/15000 nodes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Experiment scale selection shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down population for quick runs (default).
    Quick,
    /// The paper's population (5000 / 15000 nodes).
    Full,
}

impl Scale {
    /// Reads the scale from the process arguments / environment.
    pub fn from_env() -> Self {
        let arg_full = std::env::args().any(|a| a == "full" || a == "--full");
        let env_full = std::env::var("ONIONBOTS_FULL").map_or(false, |v| v == "1" || v == "true");
        if arg_full || env_full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Scales a paper-sized population down for quick runs (divides by 10,
    /// with a floor).
    pub fn population(self, paper_size: usize) -> usize {
        match self {
            Scale::Full => paper_size,
            Scale::Quick => (paper_size / 10).max(100),
        }
    }

    /// Number of BFS sources for sampled metrics.
    pub fn metric_samples(self) -> usize {
        match self {
            Scale::Full => 200,
            Scale::Quick => 60,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_paper_populations() {
        assert_eq!(Scale::Quick.population(5000), 500);
        assert_eq!(Scale::Quick.population(15000), 1500);
        assert_eq!(Scale::Quick.population(500), 100);
        assert_eq!(Scale::Full.population(5000), 5000);
    }

    #[test]
    fn metric_samples_differ_by_scale() {
        assert!(Scale::Full.metric_samples() > Scale::Quick.metric_samples());
    }
}
