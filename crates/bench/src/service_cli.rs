//! The `run_experiments serve` / `submit` / `status` front ends over the
//! simulation service in [`sim::service`].
//!
//! `serve` starts the persistent daemon: the scenario registry is loaded
//! once, the result cache and execution backend are owned centrally, and
//! concurrent clients speak newline-delimited JSON over a Unix domain
//! socket (`--socket PATH`) and/or TCP loopback (`--tcp ADDR`). `submit`
//! is the client: it sends one job, streams the per-part progress frames
//! to stderr as they land, and renders the final summary through the
//! exact pipeline the one-shot CLI uses ([`crate::output`]), so stdout
//! and `summary.json` are byte-identical to a local run with the same
//! seed. `status` queries the daemon's job table, lists its scenarios,
//! or asks it to shut down gracefully.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

use sim::scenario_api::parse_override;
use sim::service::{Event, Frame, FrameReader, Request};
use sim::{
    BackendSpec, JobSpec, ResultCache, Service, ServiceConfig, ThreadsPerItem, ThreadsSpec,
    WorkerCommand,
};

use crate::output::{render_summary, Format};
use crate::scenarios;
use crate::Scale;

/// Where a daemon listens / a client connects.
enum Transport {
    /// Unix domain socket at this path.
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7415`.
    Tcp(String),
}

/// Interprets the shared `--socket PATH` / `--tcp ADDR` transport flags.
/// Returns `Ok(Some(...))` when `arg` was a transport flag (consuming
/// `value`), `Ok(None)` otherwise.
fn match_transport(arg: &str, value: Option<&String>) -> Result<Option<Transport>, String> {
    let required = |name: &str| {
        value
            .cloned()
            .ok_or_else(|| format!("{name} requires a value"))
    };
    match arg {
        "--socket" => Ok(Some(Transport::Unix(PathBuf::from(required("--socket")?)))),
        "--tcp" => Ok(Some(Transport::Tcp(required("--tcp")?))),
        _ => Ok(None),
    }
}

fn parse_threads_per_item(value: &str) -> Result<ThreadsPerItem, String> {
    match value {
        "auto" => Ok(ThreadsPerItem::Auto),
        raw => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .map(ThreadsPerItem::Fixed)
            .ok_or_else(|| format!("invalid --threads-per-item value '{raw}' (auto or N >= 1)")),
    }
}

fn parse_backend(value: &str) -> Result<BackendSpec, String> {
    match value {
        "local" => Ok(BackendSpec::Local),
        "process" => Ok(BackendSpec::Process),
        "remote" => Ok(BackendSpec::Remote),
        other => Err(format!(
            "unknown --backend '{other}' (local|process|remote)"
        )),
    }
}

/// The read and write halves of a client connection.
type Connection = (Box<dyn Read>, Box<dyn Write>);

/// Opens both halves of a client connection.
fn connect(transport: &Transport) -> Result<Connection, String> {
    match transport {
        Transport::Unix(path) => {
            let stream = UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to socket {}: {e}", path.display()))?;
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?;
            Ok((Box::new(reader), Box::new(stream)))
        }
        Transport::Tcp(addr) => {
            let stream =
                TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?;
            Ok((Box::new(reader), Box::new(stream)))
        }
    }
}

/// Sends one request frame and returns the daemon's single response
/// frame. Every non-submission request is answered with exactly one
/// event, so the client never has to wait for the connection to close
/// (dropping a cloned read/write half does not shut the socket down).
fn request_one(transport: &Transport, request: &Request) -> Result<Event, String> {
    let (reader, mut writer) = connect(transport)?;
    let frame = serde_json::to_string(request).expect("requests serialize");
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut frames = FrameReader::new(reader);
    loop {
        match frames
            .read_frame()
            .map_err(|e| format!("connection failed: {e}"))?
        {
            Frame::Eof => {
                return Err("the service closed the connection without answering".to_string())
            }
            Frame::Idle => {}
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                return serde_json::from_str::<Event>(&line)
                    .map_err(|e| format!("unparseable event frame: {e}"));
            }
        }
    }
}

// ------------------------------------------------------------------ serve

const SERVE_USAGE: &str = "\
Usage: run_experiments serve [options]

Starts the persistent simulation service. Clients connect with
`run_experiments submit` / `status` and speak newline-delimited JSON.

Options:
  --socket PATH       listen on a Unix domain socket at PATH
  --tcp ADDR          listen on a TCP address (loopback recommended,
                      e.g. 127.0.0.1:0); may be combined with --socket
  --jobs N            default workers per job (default: 1)
  --backend B         default execution backend: local|process|remote
  --worker ADDR       default remote worker host address, repeatable
                      (used by --backend remote jobs)
  --threads-per-item T
                      default intra-item thread budget: auto or N >= 1
  --max-jobs N        admission bound: at most N jobs run concurrently;
                      further submissions are answered with a Rejected
                      frame instead of queueing (default: 8)
  --remote-deadline-ms MS
                      per-item reply deadline for remote-backend jobs
                      (default: 60000)
  --cache-dir DIR     shared result cache for every job
                      (default: env ONIONBOTS_CACHE_DIR; unset = no cache)
  --no-cache          run every job uncached
  --help              show this help

SIGTERM/ctrl-c drain the daemon: new submissions are refused, in-flight
jobs finish and flush their cache entries, then the process exits 0.
";

struct ServeOptions {
    transports: Vec<Transport>,
    jobs: usize,
    backend: BackendSpec,
    workers: Vec<String>,
    threads_per_item: ThreadsPerItem,
    max_active_jobs: usize,
    remote_deadline_ms: Option<u64>,
    cache_dir: Option<String>,
    no_cache: bool,
}

fn parse_serve_options(args: &[String]) -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        transports: Vec::new(),
        jobs: 1,
        backend: BackendSpec::Local,
        workers: Vec::new(),
        threads_per_item: ThreadsPerItem::Auto,
        max_active_jobs: sim::service::DEFAULT_MAX_ACTIVE_JOBS,
        remote_deadline_ms: None,
        cache_dir: None,
        no_cache: false,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        if let Some(transport) = match_transport(arg, args.get(i))? {
            options.transports.push(transport);
            i += 1;
            continue;
        }
        let mut value_for = |name: &str| -> Result<String, String> {
            let value = args
                .get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"));
            i += 1;
            value
        };
        match arg.as_str() {
            "--jobs" => {
                let value = value_for("--jobs")?;
                options.jobs = value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value '{value}'"))?;
            }
            "--backend" => options.backend = parse_backend(&value_for("--backend")?)?,
            "--worker" => options.workers.push(value_for("--worker")?),
            "--threads-per-item" => {
                options.threads_per_item =
                    parse_threads_per_item(&value_for("--threads-per-item")?)?;
            }
            "--max-jobs" => {
                let value = value_for("--max-jobs")?;
                options.max_active_jobs =
                    value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("invalid --max-jobs value '{value}' (need N >= 1)")
                    })?;
            }
            "--remote-deadline-ms" => {
                let value = value_for("--remote-deadline-ms")?;
                options.remote_deadline_ms =
                    Some(value.parse().ok().filter(|&ms| ms >= 1).ok_or_else(|| {
                        format!("invalid --remote-deadline-ms value '{value}' (need MS >= 1)")
                    })?);
            }
            "--cache-dir" => options.cache_dir = Some(value_for("--cache-dir")?),
            "--no-cache" => options.no_cache = true,
            "--help" | "-h" => {
                print!("{SERVE_USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if options.transports.is_empty() {
        return Err("serve needs at least one of --socket PATH or --tcp ADDR".to_string());
    }
    Ok(options)
}

/// Runs the daemon until `stop` is set (the binary's signal handler) or
/// a client sends a `Shutdown` frame, then drains and exits.
pub fn serve_main(args: &[String], stop: &AtomicBool) -> ExitCode {
    let options = match parse_serve_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{SERVE_USAGE}");
            return ExitCode::from(2);
        }
    };
    // Daemon-side failpoints (`service.job`, `service.sink`, the backend
    // points) arm from the environment, exactly like worker processes. A
    // bad schedule fails startup loudly — a daemon running with half a
    // chaos schedule would be worse than no daemon at all.
    if let Err(error) = sim::faults::arm_from_env() {
        eprintln!("error: invalid {} schedule: {error}", sim::FAULTS_ENV);
        return ExitCode::from(2);
    }
    let cache_dir = match (options.no_cache, &options.cache_dir) {
        (true, _) => None,
        (false, Some(dir)) => Some(dir.clone()),
        (false, None) => std::env::var("ONIONBOTS_CACHE_DIR")
            .ok()
            .filter(|dir| !dir.is_empty()),
    };
    let cache = match cache_dir {
        None => None,
        Some(dir) => match ResultCache::open(&dir) {
            Ok(cache) => {
                eprintln!("service: caching results under {dir}");
                Some(cache)
            }
            Err(error) => {
                eprintln!("warning: cache dir {dir} is unusable ({error}); serving uncached");
                None
            }
        },
    };
    // Workers are this very binary re-invoked in worker mode, exactly
    // like the one-shot --backend process path.
    let worker_command = std::env::current_exe()
        .ok()
        .map(|exe| WorkerCommand::new(exe).arg("worker"));
    if options.backend == BackendSpec::Process && worker_command.is_none() {
        eprintln!("error: cannot locate own executable for worker mode");
        return ExitCode::FAILURE;
    }
    let service = Service::new(
        scenarios::registry(),
        ServiceConfig {
            jobs: options.jobs,
            backend: options.backend,
            worker_command,
            workers: options.workers,
            threads_per_item: options.threads_per_item,
            max_active_jobs: options.max_active_jobs,
            remote_deadline_ms: options.remote_deadline_ms,
            cache,
        },
    );
    // Bind TCP listeners up front so `--tcp 127.0.0.1:0` can report the
    // assigned port before the first client tries to connect.
    let mut tcp_listeners = Vec::new();
    let mut unix_paths = Vec::new();
    for transport in &options.transports {
        match transport {
            Transport::Unix(path) => unix_paths.push(path.clone()),
            Transport::Tcp(addr) => match TcpListener::bind(addr) {
                Ok(listener) => {
                    match listener.local_addr() {
                        Ok(addr) => eprintln!("service: listening on tcp {addr}"),
                        Err(_) => eprintln!("service: listening on tcp {addr}"),
                    }
                    tcp_listeners.push(listener);
                }
                Err(error) => {
                    eprintln!("error: cannot bind {addr}: {error}");
                    return ExitCode::FAILURE;
                }
            },
        }
    }
    let failed = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for listener in tcp_listeners {
            let service = &service;
            handles.push(scope.spawn(move || {
                service
                    .serve_tcp(listener, stop)
                    .map_err(|e| format!("tcp serve loop failed: {e}"))
            }));
        }
        for path in &unix_paths {
            let service = &service;
            eprintln!("service: listening on socket {}", path.display());
            handles.push(scope.spawn(move || {
                service
                    .serve_unix(path, stop)
                    .map_err(|e| format!("socket serve loop failed: {e}"))
            }));
        }
        let mut failed = false;
        for handle in handles {
            if let Err(message) = handle.join().expect("serve loop thread") {
                eprintln!("error: {message}");
                failed = true;
            }
        }
        failed
    });
    if failed {
        return ExitCode::FAILURE;
    }
    eprintln!("service: drained cleanly");
    ExitCode::SUCCESS
}

// ----------------------------------------------------------------- submit

const SUBMIT_USAGE: &str = "\
Usage: run_experiments submit [options]

Submits one job to a running `run_experiments serve` daemon, streams its
per-part progress to stderr, and renders the final summary exactly like
a one-shot run (byte-identical stdout / summary.json for a fixed seed).

Options:
  --socket PATH       connect to the daemon's Unix domain socket
  --tcp ADDR          connect to the daemon's TCP address
  --only ID[,ID...]   run only the named scenarios (repeatable)
  --scale quick|full  population scale (default: quick; env ONIONBOTS_FULL=1)
  --seed N            base RNG seed (default: the daemon's default, 2015)
  --set KEY=VALUE     scenario override, repeatable
  --jobs N            workers for this job (default: the daemon's default)
  --backend B         backend for this job: local|process|remote
  --worker ADDR       remote worker host address for this job, repeatable
                      (default: the daemon's configured fleet)
  --threads-per-item T
                      intra-item thread budget: auto or N >= 1
  --refresh           re-execute cached parts and overwrite their entries
  --out DIR           write per-report .json/.csv files and summary.json
  --format FMT        stdout rendering: table (default), csv, json
  --quiet             suppress the per-part progress frames on stderr
  --help              show this help
";

struct SubmitOptions {
    transport: Transport,
    spec: JobSpec,
    format: Format,
    out: Option<String>,
    quiet: bool,
}

fn parse_submit_options(args: &[String]) -> Result<SubmitOptions, String> {
    let mut transport = None;
    let mut spec = JobSpec::default();
    let mut format = Format::Table;
    let mut out = None;
    let mut quiet = false;
    let mut only: Vec<String> = Vec::new();
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut workers: Vec<String> = Vec::new();
    let mut scale = Scale::from_env();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        if let Some(parsed) = match_transport(arg, args.get(i))? {
            transport = Some(parsed);
            i += 1;
            continue;
        }
        if let Some((parsed, consumed_value)) =
            Scale::match_flag(arg, args.get(i).map(String::as_str))?
        {
            scale = parsed;
            i += usize::from(consumed_value);
            continue;
        }
        let mut value_for = |name: &str| -> Result<String, String> {
            let value = args
                .get(i)
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"));
            i += 1;
            value
        };
        match arg.as_str() {
            "--only" => {
                let value = value_for("--only")?;
                only.extend(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--seed" => {
                let value = value_for("--seed")?;
                spec.seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --seed value '{value}'"))?,
                );
            }
            "--set" => overrides.push(parse_override(&value_for("--set")?)?),
            "--jobs" => {
                let value = value_for("--jobs")?;
                spec.jobs = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid --jobs value '{value}'"))?,
                );
            }
            "--backend" => spec.backend = Some(parse_backend(&value_for("--backend")?)?),
            "--worker" => workers.push(value_for("--worker")?),
            "--threads-per-item" => {
                spec.threads_per_item = Some(
                    match parse_threads_per_item(&value_for("--threads-per-item")?)? {
                        ThreadsPerItem::Sequential => ThreadsSpec::Sequential,
                        ThreadsPerItem::Auto => ThreadsSpec::Auto,
                        ThreadsPerItem::Fixed(n) => ThreadsSpec::Fixed(n),
                    },
                );
            }
            "--refresh" => spec.refresh = Some(true),
            "--out" => out = Some(value_for("--out")?),
            "--format" => format = Format::parse(&value_for("--format")?)?,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{SUBMIT_USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if !only.is_empty() {
        spec.only = Some(only);
    }
    if !overrides.is_empty() {
        spec.overrides = Some(overrides.into_iter().collect());
    }
    if !workers.is_empty() {
        spec.workers = Some(workers);
    }
    if scale.is_full() {
        spec.full_scale = Some(true);
    }
    let transport =
        transport.ok_or_else(|| "submit needs --socket PATH or --tcp ADDR".to_string())?;
    Ok(SubmitOptions {
        transport,
        spec,
        format,
        out,
        quiet,
    })
}

fn run_submit(options: &SubmitOptions) -> Result<(), String> {
    let (reader, mut writer) = connect(&options.transport)?;
    let frame =
        serde_json::to_string(&Request::Submit(options.spec.clone())).expect("requests serialize");
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send job: {e}"))?;
    let mut frames = FrameReader::new(reader);
    loop {
        let line = match frames
            .read_frame()
            .map_err(|e| format!("connection to the service failed: {e}"))?
        {
            Frame::Eof => {
                return Err("the service closed the connection before the job finished".to_string())
            }
            Frame::Idle => continue,
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let event = serde_json::from_str::<Event>(&line)
            .map_err(|e| format!("unparseable event frame: {e}"))?;
        match event {
            Event::Accepted { job } => eprintln!("submitted as job {job}"),
            Event::Part { job, event } => {
                if !options.quiet {
                    eprintln!(
                        "job {job}: {}#{} {:?}",
                        event.scenario_id, event.part, event.state
                    );
                }
            }
            Event::Done {
                job,
                summary,
                cache,
            } => {
                if let Some(stats) = cache {
                    eprintln!("cache: {stats}");
                }
                render_summary(&summary, options.format, options.out.as_deref())?;
                eprintln!(
                    "job {job} completed: {} scenario(s), {} report(s)",
                    summary.outcomes.len(),
                    summary.report_count()
                );
                return Ok(());
            }
            Event::Error { job, message } => {
                return Err(match job {
                    Some(job) => format!("job {job} failed: {message}"),
                    None => message,
                })
            }
            Event::Rejected { reason } => {
                return Err(format!("the service refused the job: {reason}"))
            }
            Event::Cancelled { job } => {
                return Err(format!(
                    "job {job} was cancelled before completion; no summary was produced"
                ))
            }
            Event::ShuttingDown => {
                return Err("the service is shutting down; the job was not accepted".to_string())
            }
            other => return Err(format!("unexpected frame from the service: {other:?}")),
        }
    }
}

/// The `submit` client entry point.
pub fn submit_main(args: &[String]) -> ExitCode {
    let options = match parse_submit_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{SUBMIT_USAGE}");
            return ExitCode::from(2);
        }
    };
    match run_submit(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

// ----------------------------------------------------------------- status

const STATUS_USAGE: &str = "\
Usage: run_experiments status [options]

Queries a running `run_experiments serve` daemon.

Options:
  --socket PATH       connect to the daemon's Unix domain socket
  --tcp ADDR          connect to the daemon's TCP address
  --job N             show only job N (default: every job)
  --list              list the daemon's scenarios instead of its jobs
  --cancel N          cancel running job N: its pending items are drained
                      and nothing is written to the shared cache
  --shutdown          ask the daemon to drain and exit
  --help              show this help

Output is pretty-printed JSON (the job table, the scenario listing, or
a shutdown/cancel acknowledgement).
";

struct StatusOptions {
    transport: Transport,
    request: Request,
}

fn parse_status_options(args: &[String]) -> Result<StatusOptions, String> {
    let mut transport = None;
    let mut job = None;
    let mut list = false;
    let mut cancel = None;
    let mut shutdown = false;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        if let Some(parsed) = match_transport(arg, args.get(i))? {
            transport = Some(parsed);
            i += 1;
            continue;
        }
        match arg.as_str() {
            "--job" => {
                let value = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--job requires a value".to_string())?;
                i += 1;
                job = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --job value '{value}'"))?,
                );
            }
            "--list" => list = true,
            "--cancel" => {
                let value = args
                    .get(i)
                    .cloned()
                    .ok_or_else(|| "--cancel requires a value".to_string())?;
                i += 1;
                cancel = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid --cancel value '{value}'"))?,
                );
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                print!("{STATUS_USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let transport =
        transport.ok_or_else(|| "status needs --socket PATH or --tcp ADDR".to_string())?;
    let request = if shutdown {
        Request::Shutdown
    } else if let Some(job) = cancel {
        Request::Cancel { job }
    } else if list {
        Request::List
    } else {
        Request::Status { job }
    };
    Ok(StatusOptions { transport, request })
}

fn run_status(options: &StatusOptions) -> Result<(), String> {
    let first = request_one(&options.transport, &options.request)?;
    match first {
        Event::Jobs(jobs) => println!(
            "{}",
            serde_json::to_string_pretty(&jobs).expect("job table serializes")
        ),
        Event::Scenarios(infos) => println!(
            "{}",
            serde_json::to_string_pretty(&infos).expect("scenario listing serializes")
        ),
        Event::ShuttingDown => eprintln!("service acknowledged shutdown; draining"),
        Event::Cancelled { job } => eprintln!("job {job} cancelled; its pending items are drained"),
        Event::Error { message, .. } => return Err(message),
        other => return Err(format!("unexpected frame from the service: {other:?}")),
    }
    Ok(())
}

/// The `status` client entry point.
pub fn status_main(args: &[String]) -> ExitCode {
    let options = match parse_status_options(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{STATUS_USAGE}");
            return ExitCode::from(2);
        }
    };
    match run_status(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_options_require_a_transport_and_parse_knobs() {
        assert!(parse_serve_options(&args(&[])).is_err());
        let options = parse_serve_options(&args(&[
            "--socket",
            "/tmp/svc.sock",
            "--tcp",
            "127.0.0.1:0",
            "--jobs",
            "4",
            "--backend",
            "process",
            "--threads-per-item",
            "2",
            "--max-jobs",
            "2",
            "--remote-deadline-ms",
            "3000",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(options.transports.len(), 2);
        assert_eq!(options.jobs, 4);
        assert_eq!(options.backend, BackendSpec::Process);
        assert_eq!(options.threads_per_item, ThreadsPerItem::Fixed(2));
        assert_eq!(options.max_active_jobs, 2);
        assert_eq!(options.remote_deadline_ms, Some(3000));
        assert!(options.no_cache);
        let defaults = parse_serve_options(&args(&["--socket", "/tmp/svc.sock"])).unwrap();
        assert_eq!(
            defaults.max_active_jobs,
            sim::service::DEFAULT_MAX_ACTIVE_JOBS
        );
        assert_eq!(defaults.remote_deadline_ms, None);
        assert!(parse_serve_options(&args(&["--socket"])).is_err());
        assert!(parse_serve_options(&args(&["--socket", "p", "--backend", "warp"])).is_err());
        assert!(parse_serve_options(&args(&["--socket", "p", "--max-jobs", "0"])).is_err());
        assert!(
            parse_serve_options(&args(&["--socket", "p", "--remote-deadline-ms", "never"]))
                .is_err()
        );
    }

    #[test]
    fn submit_options_build_the_job_spec() {
        let options = parse_submit_options(&args(&[
            "--socket",
            "/tmp/svc.sock",
            "--only",
            "fig6,fig4",
            "--seed",
            "99",
            "--set",
            "steps=2",
            "--scale",
            "full",
            "--jobs",
            "3",
            "--backend",
            "local",
            "--threads-per-item",
            "auto",
            "--refresh",
            "--format",
            "json",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(
            options.spec.only,
            Some(vec!["fig6".to_string(), "fig4".to_string()])
        );
        assert_eq!(options.spec.seed, Some(99));
        assert_eq!(options.spec.full_scale, Some(true));
        assert_eq!(
            options.spec.overrides.as_ref().unwrap().get("steps"),
            Some(&"2".to_string())
        );
        assert_eq!(options.spec.jobs, Some(3));
        assert_eq!(options.spec.backend, Some(BackendSpec::Local));
        assert_eq!(options.spec.threads_per_item, Some(ThreadsSpec::Auto));
        assert_eq!(options.spec.refresh, Some(true));
        assert_eq!(options.format, Format::Json);
        assert!(options.quiet);
        // Defaults: an empty flag set is a bare full-registry submission.
        let bare = parse_submit_options(&args(&["--tcp", "127.0.0.1:7415"])).unwrap();
        assert_eq!(bare.spec, JobSpec::default());
        assert!(
            parse_submit_options(&args(&["--seed", "1"])).is_err(),
            "no transport"
        );
    }

    #[test]
    fn status_options_select_the_request() {
        let plain = parse_status_options(&args(&["--socket", "/tmp/s"])).unwrap();
        assert_eq!(plain.request, Request::Status { job: None });
        let one = parse_status_options(&args(&["--socket", "/tmp/s", "--job", "7"])).unwrap();
        assert_eq!(one.request, Request::Status { job: Some(7) });
        let list = parse_status_options(&args(&["--socket", "/tmp/s", "--list"])).unwrap();
        assert_eq!(list.request, Request::List);
        let stop = parse_status_options(&args(&["--socket", "/tmp/s", "--shutdown"])).unwrap();
        assert_eq!(stop.request, Request::Shutdown);
        let cancel = parse_status_options(&args(&["--socket", "/tmp/s", "--cancel", "3"])).unwrap();
        assert_eq!(cancel.request, Request::Cancel { job: 3 });
        assert!(parse_status_options(&args(&["--socket", "/tmp/s", "--cancel", "x"])).is_err());
        assert!(
            parse_status_options(&args(&["--job", "1"])).is_err(),
            "no transport"
        );
        assert!(parse_status_options(&args(&["--socket", "/tmp/s", "--job", "x"])).is_err());
    }

    #[test]
    fn connecting_to_a_missing_socket_is_a_clean_error() {
        let transport = Transport::Unix(PathBuf::from("/nonexistent/service.sock"));
        let error = match connect(&transport) {
            Ok(_) => panic!("connected to a nonexistent socket"),
            Err(error) => error,
        };
        assert!(error.contains("cannot connect"), "{error}");
    }
}
