//! Micro-benchmarks of the DDSR maintenance operations: node removal with
//! repair + pruning, versus plain removal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddsr_repair");
    for &k in &[5usize, 10, 15] {
        group.bench_function(format!("remove_with_repair_k{k}"), |b| {
            b.iter_batched(
                || {
                    let mut rng = StdRng::seed_from_u64(1);
                    let (overlay, ids) =
                        DdsrOverlay::new_regular(500, k, DdsrConfig::for_degree(k), &mut rng);
                    (overlay, ids, rng)
                },
                |(mut overlay, ids, mut rng)| {
                    for id in ids.iter().take(50) {
                        overlay.remove_node_with_repair(*id, &mut rng);
                    }
                    overlay
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("remove_without_repair_k10", |b| {
        b.iter_batched(
            || {
                let mut rng = StdRng::seed_from_u64(1);
                DdsrOverlay::new_regular(500, 10, DdsrConfig::for_degree(10), &mut rng)
            },
            |(mut overlay, ids)| {
                for id in ids.iter().take(50) {
                    overlay.remove_node_without_repair(*id);
                }
                overlay
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
