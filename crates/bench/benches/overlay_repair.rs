//! Benchmarks of DDSR takedown repair on large overlays — the hot path of
//! every churn experiment (Figures 4–6 and the `scale` scenario).
//!
//! `sequential_takedown_n*` removes 1% of the population one victim at a
//! time (repair + prune after each), the mode the gradual-takedown
//! experiments use; `batched_takedown_n*` removes the same victims in one
//! `remove_nodes` wave (coalesced repair, single prune pass), the mode the
//! `scale` scenario uses. Results for n ∈ {10^4, 10^5} are recorded in
//! `BENCH_graph_core.json` at the repository root as the perf trajectory of
//! the graph core.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use onion_graph::graph::NodeId;
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 2] = [10_000, 100_000];
const DEGREE: usize = 10;

fn bench_overlay_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_repair");
    for &n in &SIZES {
        let mut rng = StdRng::seed_from_u64(42);
        let (base, ids) =
            DdsrOverlay::new_regular(n, DEGREE, DdsrConfig::for_degree(DEGREE), &mut rng);
        let victims: Vec<NodeId> = ids.iter().copied().take(n / 100).collect();
        group.bench_function(format!("sequential_takedown_n{n}"), |b| {
            b.iter_batched(
                || (base.clone(), StdRng::seed_from_u64(7)),
                |(mut overlay, mut rng)| {
                    for &v in &victims {
                        overlay.remove_node_with_repair(v, &mut rng);
                    }
                    overlay
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("batched_takedown_n{n}"), |b| {
            b.iter_batched(
                || (base.clone(), StdRng::seed_from_u64(7)),
                |(mut overlay, mut rng)| {
                    overlay.remove_nodes(&victims, &mut rng);
                    overlay
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlay_repair);
criterion_main!(benches);
