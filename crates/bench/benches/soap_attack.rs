//! Benchmarks of the SOAP mitigation: a single campaign iteration and a full
//! neutralization run against a small basic OnionBot overlay.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mitigation::soap::{SoapAttack, SoapConfig};
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_soap(c: &mut Criterion) {
    let mut group = c.benchmark_group("soap_attack");
    group.bench_function("single_iteration_n200_k10", |b| {
        b.iter_batched(
            || {
                let mut rng = StdRng::seed_from_u64(8);
                let (overlay, ids) =
                    DdsrOverlay::new_regular(200, 10, DdsrConfig::for_degree(10), &mut rng);
                let attack = SoapAttack::new(SoapConfig::default(), ids[0]);
                (overlay, attack, rng)
            },
            |(mut overlay, mut attack, mut rng)| attack.step(&mut overlay, 1, &mut rng),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("full_campaign_n100_k6", |b| {
        b.iter_batched(
            || {
                let mut rng = StdRng::seed_from_u64(9);
                let (overlay, ids) =
                    DdsrOverlay::new_regular(100, 6, DdsrConfig::for_degree(6), &mut rng);
                let attack = SoapAttack::new(SoapConfig::default(), ids[0]);
                (overlay, attack, rng)
            },
            |(mut overlay, mut attack, mut rng)| attack.run(&mut overlay, &mut rng),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_soap);
criterion_main!(benches);
