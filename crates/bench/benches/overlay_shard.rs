//! Benchmarks of sharded overlay construction and partitioned wave repair
//! (PR 8) against the sequential paths they replace — the build-bound hot
//! path of the `scale` scenario at 10^4–10^6 nodes.
//!
//! `sequential_build_n*` runs the global pairing model
//! (`DdsrOverlay::new_regular`); `sharded_build_n*` runs the per-shard
//! pairing model over a 64-shard grid with the deterministic
//! ascending-shard merge (`new_regular_sharded`). `sequential_wave_n*`
//! removes a 5% wave through `remove_nodes` (per-insert binary search and
//! shift); `sharded_wave_n*` removes the same wave through
//! `remove_nodes_sharded` (partitioned bulk insertion with one deferred
//! sort per touched list, frozen-degree prune planning, sequential
//! reconciliation). Both sharded paths honor the ambient thread budget,
//! which defaults to 1 — on a single-core container the comparison shows
//! the batch-insert/deferred-sort and shard-locality win alone. Medians
//! for n ∈ {10^4, 10^5} are recorded in `BENCH_overlay_shard.json` at the
//! repository root; the 10^6 row is measured end-to-end through the
//! `scale` scenario wall time recorded there too.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use onion_graph::graph::NodeId;
use onionbots_core::shard::{ShardGrid, DEFAULT_SHARDS};
use onionbots_core::{DdsrConfig, DdsrOverlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 2] = [10_000, 100_000];
const DEGREE: usize = 10;
const WAVE_FRAC: f64 = 0.05;

fn bench_overlay_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_shard");
    for &n in &SIZES {
        let grid = ShardGrid::new(n, DEGREE, DEFAULT_SHARDS);
        group.bench_function(format!("sequential_build_n{n}"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(42),
                |mut rng| {
                    DdsrOverlay::new_regular(n, DEGREE, DdsrConfig::for_degree(DEGREE), &mut rng)
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("sharded_build_n{n}"), |b| {
            b.iter_batched(
                || StdRng::seed_from_u64(42),
                |mut rng| {
                    DdsrOverlay::new_regular_sharded(
                        n,
                        DEGREE,
                        DdsrConfig::for_degree(DEGREE),
                        &grid,
                        &mut rng,
                    )
                },
                BatchSize::LargeInput,
            );
        });

        let mut rng = StdRng::seed_from_u64(42);
        let (base, ids) = DdsrOverlay::new_regular_sharded(
            n,
            DEGREE,
            DdsrConfig::for_degree(DEGREE),
            &grid,
            &mut rng,
        );
        let wave = ((n as f64 * WAVE_FRAC) as usize).max(1);
        let victims: Vec<NodeId> = ids.iter().copied().take(wave).collect();
        group.bench_function(format!("sequential_wave_n{n}"), |b| {
            b.iter_batched(
                || (base.clone(), StdRng::seed_from_u64(7)),
                |(mut overlay, mut rng)| {
                    overlay.remove_nodes(&victims, &mut rng);
                    overlay
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("sharded_wave_n{n}"), |b| {
            b.iter_batched(
                || (base.clone(), StdRng::seed_from_u64(7)),
                |(mut overlay, mut rng)| {
                    overlay.remove_nodes_sharded(&victims, &grid, &mut rng);
                    overlay
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overlay_shard);
criterion_main!(benches);
