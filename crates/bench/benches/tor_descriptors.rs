//! Benchmarks of the simulated Tor directory operations: descriptor-id
//! computation, responsible-HSDir selection, publication and lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tor_sim::hsdir::{descriptor_ids, responsible_hsdirs};
use tor_sim::network::TorNetwork;
use tor_sim::onion::OnionAddress;

fn bench_descriptors(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut network = TorNetwork::new(200, &mut rng);
    let onion = OnionAddress::from_identifier([0x5a; 10]);
    network.register_hidden_service(onion, None);
    network.announce_service(onion).unwrap();
    let ring = network.consensus().hsdir_ring();

    let mut group = c.benchmark_group("tor_descriptors");
    group.bench_function("descriptor_ids", |b| {
        b.iter(|| descriptor_ids([0x5a; 10], 123_456, None));
    });
    group.bench_function("responsible_hsdirs_ring200", |b| {
        let ids = descriptor_ids([0x5a; 10], 123_456, None);
        b.iter(|| responsible_hsdirs(ids[0], &ring));
    });
    group.bench_function("resolve_and_deliver", |b| {
        b.iter(|| {
            network
                .send_to_onion(onion, None, vec![0u8; 400])
                .expect("announced service is reachable");
            network.drain_mailbox(onion)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_descriptors);
criterion_main!(benches);
