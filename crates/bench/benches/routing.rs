//! Benchmarks of overlay message propagation: flooding broadcast and greedy
//! routing with and without Neighbors-of-Neighbor lookahead.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_graph::generators::random_regular;
use onionbots_core::routing::{flood_broadcast, greedy_route, non_greedy_route};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_routing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let (graph, ids) = random_regular(1000, 10, &mut rng);
    let mut group = c.benchmark_group("routing");
    group.bench_function("flood_broadcast_n1000_k10", |b| {
        b.iter(|| flood_broadcast(&graph, ids[0]));
    });
    group.bench_function("greedy_route_n1000_k10", |b| {
        b.iter(|| greedy_route(&graph, ids[0], ids[999], 1000));
    });
    group.bench_function("non_greedy_route_n1000_k10", |b| {
        b.iter(|| non_greedy_route(&graph, ids[0], ids[999], 1000));
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
