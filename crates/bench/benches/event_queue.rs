//! Throughput benchmarks for the discrete-event queue in `sim::engine`:
//! bulk schedule/pop cycles and cascading `run_until` handling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sim::engine::EventQueue;

const EVENTS: u64 = 10_000;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(EVENTS));

    group.bench_function(format!("schedule_pop_{EVENTS}"), |b| {
        b.iter(|| {
            let mut queue: EventQueue<u64> = EventQueue::new();
            // Interleave two time streams so pops have real ordering work.
            for i in 0..EVENTS {
                let at = if i % 2 == 0 { i } else { EVENTS * 2 - i };
                queue.schedule(at, i);
            }
            let mut sum = 0u64;
            while let Some(event) = queue.pop() {
                sum = sum.wrapping_add(event.event);
            }
            sum
        });
    });

    group.bench_function(format!("run_until_cascade_{EVENTS}"), |b| {
        b.iter_batched(
            || {
                let mut queue: EventQueue<u64> = EventQueue::new();
                queue.schedule(1, 1);
                queue
            },
            |mut queue| {
                // Each handled event schedules the next, measuring the
                // schedule+pop round trip through the handler path.
                queue.run_until(EVENTS, |queue, event| {
                    if event.event < EVENTS {
                        queue.schedule_in(1, event.event + 1);
                    }
                })
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
