//! Benchmarks of the from-scratch cryptographic primitives: hashing, stream
//! encryption, uniform encoding and RSA signatures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use onion_crypto::chacha20::ChaCha20;
use onion_crypto::digest::Digest;
use onion_crypto::elligator::UniformEncoder;
use onion_crypto::rsa::RsaKeyPair;
use onion_crypto::sha1::Sha1;
use onion_crypto::sha256::Sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    let mut group = c.benchmark_group("crypto_primitives");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha1_4k", |b| b.iter(|| Sha1::digest(&data)));
    group.bench_function("sha256_4k", |b| b.iter(|| Sha256::digest(&data)));
    group.bench_function("chacha20_4k", |b| {
        let cipher = ChaCha20::new(&[7u8; 32], &[9u8; 12], 0);
        b.iter(|| cipher.apply(&data));
    });
    group.finish();

    let mut rng = StdRng::seed_from_u64(7);
    let keypair = RsaKeyPair::generate(512, &mut rng);
    let encoder = UniformEncoder::new([3u8; 32]);
    let mut group = c.benchmark_group("crypto_rsa");
    group.bench_function("rsa512_sign", |b| b.iter(|| keypair.sign(b"command")));
    let signature = keypair.sign(b"command");
    group.bench_function("rsa512_verify", |b| {
        b.iter(|| keypair.public().verify(b"command", &signature))
    });
    group.bench_function("uniform_encode_decode", |b| {
        b.iter(|| {
            let cell = encoder.encode(b"broadcast: maintenance", &mut rng).unwrap();
            encoder.decode(&cell).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
