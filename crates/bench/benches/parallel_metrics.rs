//! Benchmarks of the intra-part parallel traversal layer: freezing the
//! slab into a [`CsrSnapshot`] and fanning multi-source BFS across the
//! deterministic kernel at several thread counts. Complements
//! `bfs_metrics` (which measures the public metric entry points at their
//! default sequential budget); medians are recorded in
//! `BENCH_parallel_metrics.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_graph::budget::with_thread_budget;
use onion_graph::csr::CsrSnapshot;
use onion_graph::generators::random_regular;
use onion_graph::graph::NodeId;
use onion_graph::metrics::{
    average_path_length, diameter, parallel_bfs_from_sources, path_metrics, sampled_diameter,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const SIZES: [usize; 2] = [10_000, 100_000];
const DEGREE: usize = 10;
const SOURCES: usize = 64;
const THREADS: [usize; 3] = [1, 4, 8];

fn bench_parallel_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_metrics");
    for &n in &SIZES {
        let mut rng = StdRng::seed_from_u64(3);
        let (graph, _) = random_regular(n, DEGREE, &mut rng);
        group.bench_function(format!("csr_build_n{n}"), |b| {
            b.iter(|| CsrSnapshot::build(&graph));
        });
        let csr = CsrSnapshot::build(&graph);
        let sources: Vec<NodeId> = {
            let mut nodes = graph.nodes();
            let mut rng = StdRng::seed_from_u64(5);
            nodes.shuffle(&mut rng);
            nodes.truncate(SOURCES);
            nodes
        };
        for &threads in &THREADS {
            group.bench_function(
                format!("multi_source_bfs_s{SOURCES}_t{threads}_n{n}"),
                |b| {
                    b.iter(|| parallel_bfs_from_sources(&csr, &sources, threads));
                },
            );
        }
        // The acceptance metric: the public sampled-diameter entry point
        // under an 8-thread budget (equals `bfs_metrics/
        // sampled_diameter_s8_n{n}` except for the budget).
        group.bench_function(format!("sampled_diameter_s8_t8_n{n}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                with_thread_budget(8, || sampled_diameter(&graph, 8, &mut rng))
            });
        });
    }
    // The combined sweep vs its two individual entry points, at a size
    // where exact all-pairs metrics are affordable: path_metrics exists
    // so callers needing several fields pay one snapshot + one component
    // pass + one sweep instead of two of each.
    let mut rng = StdRng::seed_from_u64(3);
    let (small, _) = random_regular(2_000, DEGREE, &mut rng);
    group.bench_function("path_metrics_combined_n2000", |b| {
        b.iter(|| path_metrics(&small));
    });
    group.bench_function("diameter_plus_apl_separate_n2000", |b| {
        b.iter(|| (diameter(&small), average_path_length(&small)));
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_metrics);
criterion_main!(benches);
