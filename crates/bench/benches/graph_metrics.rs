//! Benchmarks of the evaluation metrics (closeness, degree centrality,
//! diameter, connected components) used in Figures 4-6.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_graph::components::component_count;
use onion_graph::generators::random_regular;
use onion_graph::metrics::{
    average_degree_centrality, sampled_average_closeness_centrality, sampled_diameter,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let (graph, _) = random_regular(1000, 10, &mut rng);
    let mut group = c.benchmark_group("graph_metrics");
    group.bench_function("degree_centrality_n1000", |b| {
        b.iter(|| average_degree_centrality(&graph));
    });
    group.bench_function("sampled_closeness_n1000_s50", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            sampled_average_closeness_centrality(&graph, 50, &mut rng)
        });
    });
    group.bench_function("sampled_diameter_n1000_s50", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            sampled_diameter(&graph, 50, &mut rng)
        });
    });
    group.bench_function("component_count_n1000", |b| {
        b.iter(|| component_count(&graph));
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
