//! Benchmarks of the BFS-backed evaluation metrics at the population sizes
//! the `scale` scenario sweeps. Unlike `graph_metrics` (n = 1000 spot
//! checks), these measure the traversal core itself at n ∈ {10^4, 10^5};
//! medians are recorded in `BENCH_graph_core.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_graph::components::component_count;
use onion_graph::generators::random_regular;
use onion_graph::metrics::sampled_diameter;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 2] = [10_000, 100_000];
const DEGREE: usize = 10;

fn bench_bfs_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_metrics");
    for &n in &SIZES {
        let mut rng = StdRng::seed_from_u64(3);
        let (graph, _) = random_regular(n, DEGREE, &mut rng);
        group.bench_function(format!("sampled_diameter_s8_n{n}"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                sampled_diameter(&graph, 8, &mut rng)
            });
        });
        group.bench_function(format!("component_count_n{n}"), |b| {
            b.iter(|| component_count(&graph));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs_metrics);
criterion_main!(benches);
