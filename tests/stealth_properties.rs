//! Integration tests of the stealth properties the paper claims for
//! OnionBots (§IV-D, §V-A): fixed-size indistinguishable messages, no
//! linkability between rotated addresses without `K_B`, and the limits of
//! what a defender learns from a captured bot.

use onionbots::botnet::messages::{Audience, CommandKind, SignedCommand};
use onionbots::botnet::{Bot, BotId, Botmaster};
use onionbots::core::rotation::AddressSchedule;
use onionbots::crypto::elligator::{UniformEncoder, UNIFORM_CELL_LEN};
use onionbots::crypto::kdf::derive_link_key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

#[test]
fn every_wire_message_has_the_same_size_regardless_of_content() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut master = Botmaster::new(768, &mut rng);
    let encoder = UniformEncoder::new(derive_link_key(b"net", b"a", b"b"));

    let commands = vec![
        master.issue(CommandKind::Maintenance, Audience::Broadcast, 0),
        master.issue(
            CommandKind::SimulatedDdos {
                target: "a-very-long-target-name.example.invalid".repeat(2),
            },
            Audience::Broadcast,
            0,
        ),
        master.issue(
            CommandKind::RotateAddresses { period: 9 },
            Audience::Broadcast,
            0,
        ),
    ];
    let mut sizes = BTreeSet::new();
    for cmd in &commands {
        let cell = cmd.to_cell(&encoder, &mut rng).unwrap();
        sizes.insert(cell.len());
        assert_eq!(cell.len(), UNIFORM_CELL_LEN);
    }
    assert_eq!(sizes.len(), 1, "all commands are indistinguishable by size");
}

#[test]
fn relaying_bots_cannot_read_messages_for_other_links() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut master = Botmaster::new(768, &mut rng);
    let cmd = master.issue(CommandKind::Maintenance, Audience::Broadcast, 0);

    let link_ab = UniformEncoder::new(derive_link_key(b"net", b"bot-a", b"bot-b"));
    let link_bc = UniformEncoder::new(derive_link_key(b"net", b"bot-b", b"bot-c"));
    let cell = cmd.to_cell(&link_ab, &mut rng).unwrap();
    // A node holding a different link key either fails to decode or recovers
    // garbage that is not the command.
    match SignedCommand::from_cell(&link_bc, &cell) {
        Err(_) => {}
        Ok(decoded) => assert_ne!(decoded, cmd),
    }
}

#[test]
fn rotated_addresses_are_unlinkable_without_k_b() {
    let mut rng = StdRng::seed_from_u64(3);
    let master = Botmaster::new(768, &mut rng);
    let k_b: [u8; 32] = rng.gen();
    let schedule = AddressSchedule::new(master.public_key(), k_b);

    // The adversary observes one address; the next-period address shares no
    // structure with it (different identifiers, no common prefix beyond
    // chance).
    let today = schedule.address_for_period(10);
    let tomorrow = schedule.address_for_period(11);
    assert_ne!(today, tomorrow);
    let same_prefix = today
        .identifier()
        .iter()
        .zip(tomorrow.identifier().iter())
        .take_while(|(a, b)| a == b)
        .count();
    assert!(same_prefix < 4, "long shared prefixes would allow linking");

    // An adversary guessing K_B values essentially never reproduces the
    // real schedule.
    for _ in 0..50 {
        let guess: [u8; 32] = rng.gen();
        if guess == k_b {
            continue;
        }
        let wrong = AddressSchedule::new(master.public_key(), guess);
        assert_ne!(wrong.address_for_period(11), tomorrow);
    }
}

#[test]
fn a_captured_bot_reveals_only_its_own_peers_and_no_ips() {
    let mut rng = StdRng::seed_from_u64(4);
    let master = Botmaster::new(768, &mut rng);
    let mut bots: Vec<Bot> = (0..10)
        .map(|i| Bot::infect(BotId(i), master.public_key(), &mut rng))
        .collect();
    let addresses: Vec<_> = bots.iter().map(Bot::current_address).collect();
    // Ring topology: each bot knows exactly two peers.
    for i in 0..10usize {
        let left = addresses[(i + 9) % 10];
        let right = addresses[(i + 1) % 10];
        bots[i].rally([left, right]);
    }
    // Capturing bot 0 exposes two onion addresses — not the rest of the
    // botnet and nothing IP-like.
    let captured = &bots[0];
    let exposed = captured.peers();
    assert_eq!(exposed.len(), 2);
    for addr in &exposed {
        assert!(addresses.contains(addr));
        assert!(addr.to_string().ends_with(".onion"));
    }
    let unexposed: Vec<_> = addresses
        .iter()
        .filter(|a| !exposed.contains(a) && **a != captured.current_address())
        .collect();
    assert_eq!(unexposed.len(), 7, "the other seven bots stay hidden");
}
