//! Cross-crate integration tests: the full OnionBot protocol stack (crypto →
//! Tor substrate → overlay → botnet) and the headline claims of the paper's
//! evaluation, exercised through the umbrella crate's public API exactly as
//! the examples use it.

use onionbots::botnet::messages::{Audience, CommandKind, SignedCommand};
use onionbots::botnet::BotnetSimulation;
use onionbots::core::{DdsrConfig, DdsrOverlay};
use onionbots::crypto::rsa::RsaKeyPair;
use onionbots::graph::components::{component_count, is_connected};
use onionbots::mitigation::soap::{SoapAttack, SoapConfig};
use onionbots::sim::scenario::{
    gradual_takedown, partition_threshold, TakedownMode, TakedownParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn command_broadcast_survives_address_rotation_and_partial_takedown() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut sim = BotnetSimulation::new(40, &mut rng);
    sim.infect(24, &mut rng);
    sim.rally(4, &mut rng);

    // Full coverage on the fresh botnet.
    let before = sim.broadcast_command(CommandKind::Maintenance, 2, &mut rng);
    assert_eq!(before.bots_reached, 24);
    assert_eq!(before.bots_executed, 24);

    // Rotate addresses (daily forgetting) — the C&C still reaches everyone.
    sim.rotate_all(1);
    let rotated =
        sim.broadcast_command(CommandKind::SimulatedCompute { work_units: 2 }, 2, &mut rng);
    assert_eq!(rotated.bots_reached, 24, "rotation must not orphan any bot");

    // Take a third of the botnet down; the rest remains commandable.
    let victims: Vec<_> = sim.bot_ids().into_iter().take(8).collect();
    for v in victims {
        assert!(sim.take_down(v));
    }
    let after = sim.broadcast_command(CommandKind::Maintenance, 3, &mut rng);
    assert_eq!(after.population, 16);
    assert!(
        after.bots_reached >= 12,
        "most surviving bots stay reachable, got {}",
        after.bots_reached
    );
}

#[test]
fn ddsr_overlay_resilience_matches_paper_claims() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 1000usize;
    let k = 10usize;

    // Gradual takedown of 90%: DDSR stays a single component with bounded
    // degree; the normal graph fragments.
    let params = TakedownParams {
        deletions: n * 9 / 10,
        sample_every: n / 10,
        metric_samples: 60,
    };
    let (mut ddsr, ids) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
    let ddsr_trace = gradual_takedown(
        &mut ddsr,
        &ids,
        TakedownMode::SelfRepairing,
        params,
        &mut rng,
    );
    let (mut normal, ids_n) = DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
    let normal_trace =
        gradual_takedown(&mut normal, &ids_n, TakedownMode::Normal, params, &mut rng);

    let ddsr_last = ddsr_trace.last().unwrap();
    let normal_last = normal_trace.last().unwrap();
    assert_eq!(
        ddsr_last.connected_components, 1,
        "DDSR survives 90% gradual takedown"
    );
    assert!(ddsr.graph().max_degree() <= k, "pruning bounds the degree");
    assert!(
        normal_last.connected_components > 5,
        "normal graph shatters (got {} components)",
        normal_last.connected_components
    );
    // Diameter of DDSR stays small (paper: it *decreases* as the botnet shrinks).
    assert!(ddsr_last.diameter.unwrap_or(usize::MAX) <= ddsr_trace[0].diameter.unwrap_or(0) + 2);

    // Simultaneous partition threshold sits in the ~40% region.
    let threshold = partition_threshold(n, k, 10, &mut rng);
    let fraction = threshold.fraction();
    assert!(
        (0.25..0.9).contains(&fraction),
        "partition threshold fraction {fraction} far from the paper's ~40%"
    );
}

#[test]
fn soap_neutralizes_the_basic_design_but_not_every_renter_command_path() {
    let mut rng = StdRng::seed_from_u64(3);
    let (mut overlay, ids) = DdsrOverlay::new_regular(120, 8, DdsrConfig::for_degree(8), &mut rng);
    assert!(is_connected(overlay.graph()));
    let mut soap = SoapAttack::new(SoapConfig::default(), ids[0]);
    let outcome = soap.run(&mut overlay, &mut rng);
    assert!(outcome.neutralized);
    // After neutralization, no real bot can flood-reach more than itself
    // plus defender clones.
    let clones = soap.clones();
    for &bot in ids.iter().filter(|b| overlay.graph().contains(**b)) {
        let report = onionbots::core::routing::flood_broadcast(overlay.graph(), bot);
        let reached_real = report.reached
            - overlay
                .graph()
                .nodes()
                .iter()
                .filter(|n| clones.contains(n))
                .count()
                .min(report.reached.saturating_sub(1));
        assert!(reached_real <= 1, "contained bot reached other real bots");
    }
    // The graph as a whole is partitioned from the bots' perspective.
    assert!(component_count(overlay.graph()) >= 1);
}

#[test]
fn rental_tokens_bound_what_a_renter_can_do_end_to_end() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut sim = BotnetSimulation::new(30, &mut rng);
    sim.infect(12, &mut rng);
    sim.rally(3, &mut rng);

    let renter = RsaKeyPair::generate(512, &mut rng);
    let token = sim.botmaster().issue_rental_token(
        renter.public(),
        5_000,
        vec!["simulated-spam".to_string()],
    );

    let seq = sim.botmaster_mut().next_sequence_for_renter();
    let allowed = SignedCommand::sign(
        &renter,
        CommandKind::SimulatedSpam {
            campaign: "test".into(),
        },
        Audience::Broadcast,
        seq,
        0,
        Some(token.clone()),
    );
    let allowed_report = sim.propagate(&allowed, 2, &mut rng);
    assert_eq!(allowed_report.bots_executed, 12);

    let seq = sim.botmaster_mut().next_sequence_for_renter();
    let forbidden = SignedCommand::sign(
        &renter,
        CommandKind::SimulatedDdos { target: "x".into() },
        Audience::Broadcast,
        seq,
        0,
        Some(token),
    );
    let forbidden_report = sim.propagate(&forbidden, 2, &mut rng);
    assert_eq!(forbidden_report.bots_executed, 0);
    assert!(
        forbidden_report.bots_reached > 0,
        "bots still relay what they reject"
    );
}
