//! HSDir positioning mitigation (§VI-A): an adversary plants relays whose
//! fingerprints sort immediately after a bot's descriptor IDs, waits out the
//! 25-hour HSDir eligibility period, and then denies the bot's descriptor —
//! and why periodic address rotation makes this a losing race.
//!
//! Run with: `cargo run --example hsdir_takeover`

use onionbots::mitigation::hsdir_attack::{deny_service, execute_takeover, plan_takeover};
use onionbots::tor::network::TorNetwork;
use onionbots::tor::onion::OnionAddress;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut tor = TorNetwork::new(60, &mut rng);

    let bot_today = OnionAddress::from_identifier([0x21; 10]);
    let bot_tomorrow = OnionAddress::from_identifier([0xc4; 10]);
    tor.register_hidden_service(bot_today, None);
    tor.register_hidden_service(bot_tomorrow, None);

    // Plan against the period that will be current once the planted relays
    // have earned the HSDir flag (25 hours from now).
    let attack_time = tor.time_secs() + 26 * 3600;
    let plan = plan_takeover(bot_today, attack_time, 1_000_000, &mut rng);
    println!(
        "planted {} relay fingerprints targeting {} (simulated keygen attempts: {})",
        plan.planted_fingerprints.len(),
        plan.target,
        plan.keygen_attempts
    );

    let responsible = execute_takeover(&mut tor, &plan);
    println!(
        "after 26 hours, {responsible}/6 responsible HSDir positions are adversary-controlled"
    );

    tor.announce_service(bot_today).unwrap();
    tor.announce_service(bot_tomorrow).unwrap();
    println!(
        "before denial: today's address resolvable = {}",
        tor.is_resolvable(bot_today, None)
    );
    let denied = deny_service(&mut tor, &plan);
    println!("after denial: today's address blocked = {denied}");
    println!(
        "but the rotated address the adversary did not plan for is still reachable = {}",
        tor.is_resolvable(bot_tomorrow, None)
    );
    println!("\nconclusion (matching §VI-A): per-address HSDir takeovers cannot keep up with rotating OnionBots.");
}
