//! Takedown resilience: reproduce the core claim of the paper's evaluation
//! (§V-B) at example scale — a DDSR overlay stays connected with bounded
//! degree under gradual takedowns where a normal peer-to-peer graph
//! shatters, and only simultaneous removal of ~40% of the nodes partitions
//! it.
//!
//! Run with: `cargo run --example takedown_resilience`

use onionbots::core::{DdsrConfig, DdsrOverlay};
use onionbots::sim::scenario::{
    gradual_takedown, partition_threshold, TakedownMode, TakedownParams,
};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let n = 800usize;
    let k = 10usize;

    println!("== gradual takedown of a {k}-regular overlay with {n} nodes ==");
    let params = TakedownParams {
        deletions: n * 9 / 10,
        sample_every: n / 10,
        metric_samples: 80,
    };
    for (label, mode) in [
        ("DDSR (self-repairing)", TakedownMode::SelfRepairing),
        ("Normal (no repair)", TakedownMode::Normal),
    ] {
        let (mut overlay, ids) =
            DdsrOverlay::new_regular(n, k, DdsrConfig::for_degree(k), &mut rng);
        let trace = gradual_takedown(&mut overlay, &ids, mode, params, &mut rng);
        println!("\n{label}:");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>10}",
            "deleted", "components", "degree-cent", "closeness", "diameter"
        );
        for sample in &trace {
            println!(
                "{:>10} {:>12} {:>12.4} {:>12.4} {:>10}",
                sample.nodes_deleted,
                sample.connected_components,
                sample.degree_centrality,
                sample.closeness_centrality,
                sample.diameter.map_or("-".to_string(), |d| d.to_string())
            );
        }
    }

    println!("\n== simultaneous-takedown partition threshold (Figure 6 shape) ==");
    for size in [400usize, 800, 1200] {
        let threshold = partition_threshold(size, k, size / 100, &mut rng);
        println!(
            "n = {:>5}: partitioned after {:>5} simultaneous deletions ({:.1}% of the botnet)",
            size,
            threshold.deletions_to_partition,
            threshold.fraction() * 100.0
        );
    }
}
