//! SOAP mitigation walkthrough (§VI-B / Figure 7): starting from a single
//! compromised bot, the defender's clones progressively surround every
//! discovered bot until the botnet is neutralized — then the example shows
//! how the paper's anticipated counter-defenses (proof of work, rate
//! limiting) and the SuperOnion construction change the picture.
//!
//! Run with: `cargo run --example soap_mitigation`

use onionbots::core::{DdsrConfig, DdsrOverlay};
use onionbots::mitigation::defenses::{PeeringRateLimiter, PowChallenge};
use onionbots::mitigation::soap::{SoapAttack, SoapConfig};
use onionbots::mitigation::superonion::{HostId, SuperOnion, SuperOnionConfig};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    println!("== SOAP campaign against a basic OnionBot (n = 300, k = 10) ==");
    let (mut overlay, ids) =
        DdsrOverlay::new_regular(300, 10, DdsrConfig::for_degree(10), &mut rng);
    let mut attack = SoapAttack::new(SoapConfig::default(), ids[0]);
    let outcome = attack.run(&mut overlay, &mut rng);
    for progress in outcome
        .trace
        .iter()
        .step_by((outcome.trace.len() / 12).max(1))
    {
        println!(
            "iteration {:>4}: contained {:>4}/{:<4} discovered bots, {:>6} clones deployed",
            progress.iteration,
            progress.contained_bots,
            progress.discovered_bots,
            progress.clones_created
        );
    }
    println!(
        "neutralized: {} after {} iterations with {} clones\n",
        outcome.neutralized, outcome.iterations, outcome.clones_created
    );

    println!("== cost of the paper's counter-defenses per clone acceptance ==");
    let pow = PowChallenge::for_request_load(b"peer-with-me".to_vec(), 12, 50);
    let (_, hashes) = pow.solve(u64::MAX >> 16).expect("solvable difficulty");
    println!(
        "proof of work at {} bits: ~{hashes} hashes per clone",
        pow.difficulty_bits
    );
    let limiter = PeeringRateLimiter {
        base_delay_secs: 60,
        per_peer_delay_secs: 600,
    };
    println!(
        "rate limiting: the 11th peering request at one bot waits {} simulated minutes\n",
        limiter.delay_for(10) / 60
    );

    println!("== SuperOnion (n = 5 hosts, m = 3 virtual nodes, i = 2) vs. soaping ==");
    let mut so = SuperOnion::build(SuperOnionConfig::figure8(), &mut rng);
    let host = HostId(0);
    let virtuals = so.virtual_nodes(host);
    so.soap_virtual_node(virtuals[0]);
    so.soap_virtual_node(virtuals[1]);
    println!(
        "after soaping 2/3 of host 0's virtual nodes, the host is still operational: {}",
        so.host_operational(host)
    );
    let replaced = so.recover(host, &mut rng);
    println!("the host's connectivity probe detects and replaces {replaced} soaped virtual nodes");
}
