//! Botnet-for-rent flow (§IV-E): Mallory (the botmaster) certifies Trudy's
//! (the renter's) key with an expiring, whitelisted token; Trudy's signed
//! commands are accepted by bots only while the token is valid and only for
//! whitelisted command kinds. Everything is inert simulation.
//!
//! Run with: `cargo run --example botnet_rental`

use onionbots::botnet::messages::{Audience, CommandKind, SignedCommand};
use onionbots::botnet::BotnetSimulation;
use onionbots::crypto::rsa::RsaKeyPair;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    let mut sim = BotnetSimulation::new(40, &mut rng);
    sim.infect(20, &mut rng);
    sim.rally(4, &mut rng);

    // Trudy generates her own key pair and Mallory certifies it.
    let trudy = RsaKeyPair::generate(512, &mut rng);
    let token = sim.botmaster().issue_rental_token(
        trudy.public(),
        10_000,
        vec!["simulated-compute".to_string()],
    );
    println!(
        "rental token issued: expires at t={}s, whitelist = {:?}",
        token.expires_at_secs, token.whitelisted_commands
    );

    // A whitelisted command from Trudy propagates and executes everywhere.
    let sequence = sim.botmaster_mut().next_sequence_for_renter();
    let allowed = SignedCommand::sign(
        &trudy,
        CommandKind::SimulatedCompute { work_units: 50 },
        Audience::Broadcast,
        sequence,
        sim.clock_secs(),
        Some(token.clone()),
    );
    let report = sim.propagate(&allowed, 3, &mut rng);
    println!(
        "whitelisted compute command: reached {}/{} bots, executed by {}",
        report.bots_reached, report.population, report.bots_executed
    );

    // A non-whitelisted command from Trudy is relayed but never executed.
    let sequence = sim.botmaster_mut().next_sequence_for_renter();
    let forbidden = SignedCommand::sign(
        &trudy,
        CommandKind::SimulatedDdos {
            target: "victim.example".to_string(),
        },
        Audience::Broadcast,
        sequence,
        sim.clock_secs(),
        Some(token.clone()),
    );
    let report = sim.propagate(&forbidden, 3, &mut rng);
    println!(
        "non-whitelisted ddos command: reached {} bots but executed by {}",
        report.bots_reached, report.bots_executed
    );

    // After the token expires, even whitelisted commands are rejected.
    sim.advance_time(20_000);
    let sequence = sim.botmaster_mut().next_sequence_for_renter();
    let expired = SignedCommand::sign(
        &trudy,
        CommandKind::SimulatedCompute { work_units: 5 },
        Audience::Broadcast,
        sequence,
        sim.clock_secs(),
        Some(token),
    );
    let report = sim.propagate(&expired, 3, &mut rng);
    println!(
        "after token expiry: reached {} bots, executed by {}",
        report.bots_reached, report.bots_executed
    );
}
