//! Registering a custom workload with the scenario API and running it
//! through the parallel experiment runner.
//!
//! The scenario measures how the DDSR partition threshold moves with the
//! overlay degree — a workload the paper does not plot, expressed in a few
//! dozen lines: one part per degree, merged point-wise into a single
//! report, deterministic for any worker count.
//!
//! Run with: `cargo run --release --example custom_scenario`

use onionbots::sim::experiment::{ExperimentReport, Series};
use onionbots::sim::scenario::partition_threshold;
use onionbots::sim::scenario_api::{Scenario, ScenarioParams, ScenarioRegistry};
use onionbots::sim::Runner;
use rand::rngs::StdRng;

const DEGREES: [usize; 4] = [4, 8, 12, 16];

struct ThresholdByDegree;

impl Scenario for ThresholdByDegree {
    fn id(&self) -> &str {
        "threshold-by-degree"
    }

    fn title(&self) -> &str {
        "Partition threshold as a function of overlay degree"
    }

    fn parts(&self, _params: &ScenarioParams) -> usize {
        DEGREES.len()
    }

    fn run_part(
        &self,
        part: usize,
        _params: &ScenarioParams,
        rng: &mut StdRng,
    ) -> Vec<ExperimentReport> {
        let k = DEGREES[part];
        let n = 600;
        let threshold = partition_threshold(n, k, 10, rng);
        let mut report = ExperimentReport::new(
            "threshold-by-degree",
            format!("Simultaneous deletions needed to partition, n = {n}"),
            "degree",
            "deletions to partition",
        );
        report.push_series(Series::new(
            "threshold",
            vec![k as f64],
            vec![threshold.deletions_to_partition as f64],
        ));
        report.push_note(format!(
            "k = {k:>2}: partitioned after {} deletions ({:.1}%)",
            threshold.deletions_to_partition,
            threshold.fraction() * 100.0
        ));
        vec![report]
    }
}

fn main() {
    let mut registry = ScenarioRegistry::new();
    registry.register(ThresholdByDegree);

    let selected = registry.select(&[]).expect("empty selection = everything");
    let summary = Runner::new(ScenarioParams::with_seed(7))
        .jobs(4)
        .run(&selected);

    for outcome in &summary.outcomes {
        for report in &outcome.reports {
            println!("{}", report.to_table());
        }
    }
    println!(
        "degree raises the threshold monotonically: {}",
        summary.outcomes[0].reports[0].series[0]
            .y
            .windows(2)
            .all(|w| w[0] <= w[1])
    );
}
