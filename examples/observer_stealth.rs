//! What a network observer sees (§V-A): propagate very different commands
//! through the botnet while a passive wire observer records everything
//! visible, then print the statistics the observer could compute — showing
//! that sizes carry zero information, in contrast to an unpadded strawman
//! botnet.
//!
//! Run with: `cargo run --example observer_stealth`

use onionbots::botnet::messages::CommandKind;
use onionbots::botnet::observer::WireObserver;
use onionbots::botnet::BotnetSimulation;
use onionbots::crypto::elligator::UNIFORM_CELL_LEN;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let mut sim = BotnetSimulation::new(30, &mut rng);
    sim.infect(18, &mut rng);
    sim.rally(4, &mut rng);

    let mut observer = WireObserver::new();
    let commands = vec![
        CommandKind::Maintenance,
        CommandKind::SimulatedDdos {
            target: "a-very-long-and-descriptive-target-label.example.invalid".to_string(),
        },
        CommandKind::RotateAddresses { period: 2 },
        CommandKind::SimulatedCompute { work_units: 1_000 },
    ];
    for (window, command) in commands.into_iter().enumerate() {
        let before = sim.tor().stats().messages_delivered;
        sim.broadcast_command(command.clone(), 2, &mut rng);
        let delivered = sim.tor().stats().messages_delivered - before;
        observer.observe_many(UNIFORM_CELL_LEN, window as u64, delivered as usize);
        println!(
            "window {window}: propagated {:<20} -> observer saw {delivered} identical {UNIFORM_CELL_LEN}-byte cells",
            command.name()
        );
    }

    let summary = observer.summarize();
    println!("\nobserver summary for the OnionBot:");
    println!("  total cells:            {}", summary.total_cells);
    println!("  distinct sizes:         {}", summary.distinct_sizes);
    println!(
        "  size entropy:           {:.3} bits",
        summary.size_entropy_bits
    );
    println!(
        "  mean cells per window:  {:.1}",
        summary.mean_cells_per_window
    );

    // Contrast with a strawman botnet that sends unpadded plaintext-size
    // messages: the very same commands become trivially distinguishable.
    let mut strawman = WireObserver::new();
    for (window, size) in [64usize, 410, 96, 72].into_iter().enumerate() {
        strawman.observe_many(size, window as u64, 18);
    }
    let leaky = strawman.summarize();
    println!("\nstrawman (unpadded) botnet for contrast:");
    println!("  distinct sizes:         {}", leaky.distinct_sizes);
    println!(
        "  size entropy:           {:.3} bits",
        leaky.size_entropy_bits
    );
    println!("\nconclusion: the OnionBot's wire image is size-uniform (0 bits of size entropy),");
    println!(
        "so traffic-classification defenses keyed on message sizes have nothing to work with."
    );
}
