//! Quickstart: build a small simulated Tor network, stand up an OnionBot
//! overlay on top of it, broadcast a signed maintenance command, and then
//! take a third of the bots down to watch the self-healing overlay absorb it.
//!
//! Run with: `cargo run --example quickstart`

use onionbots::botnet::messages::CommandKind;
use onionbots::botnet::BotnetSimulation;
use onionbots::core::{DdsrConfig, DdsrOverlay};
use onionbots::graph::components::{component_count, is_connected};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2015);

    // --- Protocol level: bots over the simulated Tor network. -------------
    println!("== protocol level: 30 bots over a 50-relay simulated Tor network ==");
    let mut sim = BotnetSimulation::new(50, &mut rng);
    sim.infect(30, &mut rng);
    sim.rally(4, &mut rng);
    let report = sim.broadcast_command(CommandKind::Maintenance, 3, &mut rng);
    println!(
        "broadcast reached {}/{} bots in {} gossip rounds ({} Tor deliveries, {} failed)",
        report.bots_reached,
        report.population,
        report.rounds,
        report.messages_sent,
        report.messages_failed
    );
    let stats = sim.tor().stats();
    println!(
        "tor traffic so far: {} fixed-size cells relayed, {} descriptor publications",
        stats.cells_relayed, stats.descriptors_published
    );

    // Rotate every bot to a fresh address (the daily "forgetting" step) and
    // show that the botmaster can still reach them.
    sim.rotate_all(1);
    let after_rotation = sim.broadcast_command(CommandKind::Maintenance, 3, &mut rng);
    println!(
        "after address rotation the broadcast still reaches {}/{} bots",
        after_rotation.bots_reached, after_rotation.population
    );

    // --- Overlay level: the DDSR self-healing graph at a larger scale. ----
    println!("\n== overlay level: 600-node 10-regular DDSR graph under takedown ==");
    let (mut overlay, ids) =
        DdsrOverlay::new_regular(600, 10, DdsrConfig::for_degree(10), &mut rng);
    for id in ids.iter().take(200) {
        overlay.remove_node_with_repair(*id, &mut rng);
    }
    println!(
        "after deleting 200/600 nodes: {} components (connected: {}), max degree {}, {} repair edges added, {} pruned",
        component_count(overlay.graph()),
        is_connected(overlay.graph()),
        overlay.graph().max_degree(),
        overlay.stats().edges_added,
        overlay.stats().edges_pruned
    );
}
